#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/log.h"
#include "obs/analysis.h"

namespace p3::obs {
namespace {

struct TempFile {
  explicit TempFile(const char* name)
      : path(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Stage, NameRoundTrip) {
  for (int i = 0; i < kNumStages; ++i) {
    const Stage s = static_cast<Stage>(i);
    EXPECT_EQ(parse_stage(stage_name(s)), s);
  }
  EXPECT_THROW(parse_stage("bogus"), std::invalid_argument);
}

TEST(TraceId, DistinctAcrossSliceIterationWorker) {
  std::set<std::int64_t> ids;
  for (int slice = 0; slice < 8; ++slice) {
    for (int iter = 0; iter < 8; ++iter) {
      for (int w = 0; w < 8; ++w) {
        ids.insert(make_trace_id(slice, iter, w));
      }
    }
  }
  EXPECT_EQ(ids.size(), 8u * 8u * 8u);
}

TEST(Tracer, InternsTracksAndLabels) {
  Tracer t;
  const auto a = t.track("w0.cmp");
  const auto b = t.track("n1.tx");
  EXPECT_EQ(t.track("w0.cmp"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.track_name(a), "w0.cmp");
  // Process = lane prefix before the first dot.
  EXPECT_EQ(t.tracks()[a].process, "w0");
  EXPECT_EQ(t.tracks()[b].process, "n1");

  const auto la = t.label("F1");
  EXPECT_EQ(t.label("F1"), la);
  EXPECT_EQ(t.label_text(la), "F1");
}

TEST(Tracer, RecordsAllEventKinds) {
  Tracer t;
  t.span("w0.cmp", 1.0, 2.0, "F1");
  t.instant("w0.cmp", 2.5, "mark");
  t.counter("w0.sendq", 3.0, 4.0);
  t.flow_start("n0.tx", 3.5, 7, "push");
  t.flow_end("n1.rx", 4.0, 7, "push");
  ASSERT_EQ(t.events().size(), 5u);
  EXPECT_EQ(t.events()[0].kind, EventKind::kSpan);
  EXPECT_DOUBLE_EQ(t.events()[0].t1, 2.0);
  EXPECT_EQ(t.events()[1].kind, EventKind::kInstant);
  EXPECT_EQ(t.events()[2].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(t.events()[2].value, 4.0);
  EXPECT_EQ(t.events()[3].kind, EventKind::kFlowStart);
  EXPECT_EQ(t.events()[3].flow, 7);
  EXPECT_EQ(t.events()[4].kind, EventKind::kFlowEnd);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer t;
  t.set_enabled(false);
  t.span("w0.cmp", 0.0, 1.0, "F1");
  t.instant("w0.cmp", 0.5, "mark");
  t.counter("w0.sendq", 0.5, 1.0);
  t.flow_start("n0.tx", 0.5, 1, "x");
  t.lifecycle(Stage::kSend, 0, 0, 0, 0, 0, 0, 0.5);
  EXPECT_TRUE(t.empty());
}

TEST(Tracer, ValidateCatchesNegativeSpan) {
  Tracer t;
  t.span("w0.cmp", 2.0, 1.0, "bad");
  const auto v = t.validate();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("negative-duration"), std::string::npos);
}

TEST(Tracer, ValidateCatchesDanglingFlowEnd) {
  Tracer t;
  t.flow_end("n1.rx", 1.0, 42, "orphan");
  const auto v = t.validate();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("without a start"), std::string::npos);
}

TEST(Tracer, ValidateAllowsUnmatchedFlowStart) {
  // Messages still in flight when the run stopped are legitimate.
  Tracer t;
  t.flow_start("n0.tx", 1.0, 42, "in-flight");
  EXPECT_TRUE(t.validate().empty());
}

TEST(Tracer, ValidateAccountingCountsInFlightFlows) {
  // validate() stays silent about unmatched starts; the accounting mode
  // reports how many causal edges a truncated trace is missing.
  Tracer t;
  t.flow_start("n0.tx", 1.0, 1, "push");
  t.flow_end("n1.rx", 2.0, 1, "push");
  t.flow_start("n0.tx", 3.0, 2, "in-flight");
  t.flow_start("n2.tx", 4.0, 3, "in-flight");
  const Tracer::ValidationStats stats = t.validate_accounting();
  EXPECT_TRUE(stats.violations.empty());
  EXPECT_EQ(stats.flows_started, 3);
  EXPECT_EQ(stats.flows_ended, 1);
  EXPECT_EQ(stats.flows_in_flight, 2);
}

TEST(Tracer, ValidateAccountingMatchesValidateViolations) {
  Tracer t;
  t.flow_end("n1.rx", 1.0, 7, "orphan");
  const Tracer::ValidationStats stats = t.validate_accounting();
  EXPECT_EQ(stats.violations, t.validate());
  EXPECT_EQ(stats.flows_started, 0);
  EXPECT_EQ(stats.flows_ended, 1);
  EXPECT_EQ(stats.flows_in_flight, 0);
}

TEST(Tracer, ValidateCatchesBackwardsFlow) {
  Tracer t;
  t.flow_start("n0.tx", 2.0, 5, "push");
  t.flow_end("n1.rx", 1.0, 5, "push");
  const auto v = t.validate();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("ends before it starts"), std::string::npos);
}

TEST(Tracer, ChromeJsonStructure) {
  Tracer t;
  t.span("w0.cmp", 0.001, 0.002, "F\"1\"");  // quote needs escaping
  t.counter("w0.sendq", 0.001, 3.0);
  t.flow_start("n0.tx", 0.001, 9, "push");
  t.flow_end("n1.rx", 0.002, 9, "push");

  std::ostringstream out;
  t.write_chrome_json(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("F\\\"1\\\""), std::string::npos);  // escaped label
  // 1 ms span -> ts 1000.000 us, dur 1000.000 us.
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
  // Balanced braces => structurally plausible JSON (CI additionally parses
  // the exported file with a real JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Tracer, LifecycleCsvRoundTrip) {
  Tracer t;
  t.lifecycle(Stage::kGradReady, 1, 2, 3, 4, 5, 0, 0.125);
  t.lifecycle(Stage::kParamReady, 1, 2, 3, 4, 5, 4096, 0.250);

  TempFile f("obs_tracer_test_lifecycle.csv");
  t.write_lifecycle_csv(f.path);
  const auto records = load_lifecycle_csv(f.path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].stage, Stage::kGradReady);
  EXPECT_EQ(records[0].worker, 1);
  EXPECT_EQ(records[0].slice, 2);
  EXPECT_EQ(records[0].layer, 3);
  EXPECT_EQ(records[0].iteration, 4);
  EXPECT_EQ(records[0].priority, 5);
  EXPECT_DOUBLE_EQ(records[0].t, 0.125);
  EXPECT_EQ(records[1].stage, Stage::kParamReady);
  EXPECT_EQ(records[1].bytes, 4096);
}

TEST(Tracer, ClearEmptiesEverything) {
  Tracer t;
  t.span("w0.cmp", 0.0, 1.0, "F1");
  t.lifecycle(Stage::kSend, 0, 0, 0, 0, 0, 0, 0.5);
  EXPECT_FALSE(t.empty());
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.tracks().empty());
}

TEST(LogCapture, MirrorsLogLinesAsInstants) {
  Tracer t;
  {
    LogCapture capture(t, [] { return TimeS{1.5}; });
    P3_INFO << "hello " << 42;
  }
  ASSERT_EQ(t.events().size(), 1u);
  const Event& e = t.events()[0];
  EXPECT_EQ(e.kind, EventKind::kInstant);
  EXPECT_EQ(t.track_name(e.track), "log");
  EXPECT_DOUBLE_EQ(e.t0, 1.5);
  EXPECT_EQ(t.label_text(e.label), "[INFO] hello 42");
  // Capture destroyed: lines no longer reach the tracer.
  P3_INFO << "after";
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(LogCapture, RestoresPreviousHookOnDestruction) {
  int outer_lines = 0;
  LogHook original = set_thread_log_hook(
      [&outer_lines](LogLevel, const std::string&) { ++outer_lines; });
  {
    Tracer t;
    LogCapture capture(t, [] { return TimeS{0.0}; });
    P3_INFO << "inner";  // goes to the tracer, not the outer hook
    EXPECT_EQ(outer_lines, 0);
    EXPECT_EQ(t.events().size(), 1u);
  }
  P3_INFO << "outer";  // outer hook restored
  EXPECT_EQ(outer_lines, 1);
  set_thread_log_hook(std::move(original));
}

}  // namespace
}  // namespace p3::obs
