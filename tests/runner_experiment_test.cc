#include "runner/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/zoo.h"

namespace p3::runner {
namespace {

model::Workload tiny_workload() {
  model::Workload w;
  w.model = model::toy_uniform(3, 100'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.010;
  return w;
}

ps::ClusterConfig tiny_config() {
  ps::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.bandwidth = gbps(2);
  return cfg;
}

MeasureOptions fast_opts() {
  MeasureOptions opts;
  opts.warmup = 1;
  opts.measured = 4;
  return opts;
}

TEST(MeasureThroughput, PositiveAndDeterministic) {
  const double a = measure_throughput(tiny_workload(), tiny_config(), fast_opts());
  const double b = measure_throughput(tiny_workload(), tiny_config(), fast_opts());
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(BandwidthSweep, OneSeriesPerMethodAlignedX) {
  const std::vector<core::SyncMethod> methods = {core::SyncMethod::kBaseline,
                                                 core::SyncMethod::kP3};
  const auto series = bandwidth_sweep(tiny_workload(), tiny_config(), methods,
                                      {1.0, 4.0}, fast_opts());
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].name, "Baseline");
  EXPECT_EQ(series[1].name, "P3");
  EXPECT_EQ(series[0].x, (std::vector<double>{1.0, 4.0}));
  EXPECT_EQ(series[0].x, series[1].x);
  for (const auto& s : series) {
    for (double y : s.y) EXPECT_GT(y, 0.0);
  }
}

TEST(BandwidthSweep, MonotoneForP3) {
  const auto series = bandwidth_sweep(tiny_workload(), tiny_config(),
                                      {core::SyncMethod::kP3},
                                      {0.5, 1.0, 2.0, 8.0}, fast_opts());
  for (std::size_t i = 1; i < series[0].y.size(); ++i) {
    EXPECT_GE(series[0].y[i], series[0].y[i - 1] * 0.999);
  }
}

TEST(ScalabilitySweep, ThroughputGrowsWithWorkers) {
  ps::ClusterConfig cfg = tiny_config();
  cfg.bandwidth = gbps(10);
  const auto series = scalability_sweep(tiny_workload(), cfg,
                                        {core::SyncMethod::kP3}, {1, 2, 4},
                                        fast_opts());
  ASSERT_EQ(series[0].y.size(), 3u);
  EXPECT_GT(series[0].y[1], series[0].y[0]);
  EXPECT_GT(series[0].y[2], series[0].y[1]);
}

TEST(SliceSizeSweep, CoversRequestedSizes) {
  const auto series = slice_size_sweep(tiny_workload(), tiny_config(),
                                       {10'000, 50'000}, fast_opts());
  EXPECT_EQ(series.x, (std::vector<double>{10'000, 50'000}));
  EXPECT_EQ(series.y.size(), 2u);
}

TEST(UtilizationTrace, AccountsTraffic) {
  const auto trace =
      utilization_trace(tiny_workload(), tiny_config(), 0, fast_opts());
  EXPECT_EQ(trace.bin_width, 0.010);
  EXPECT_FALSE(trace.outbound_gbps.empty());
  double total_out = 0.0;
  for (double g : trace.outbound_gbps) total_out += g;
  EXPECT_GT(total_out, 0.0);
  EXPECT_LE(trace.peak_out_gbps, 2.0 * 1.01);  // never above the NIC rate
  EXPECT_GE(trace.idle_fraction_out, 0.0);
  EXPECT_LE(trace.idle_fraction_out, 1.0);
}

TEST(BackgroundTraffic, ContendsForBandwidth) {
  // Injected foreign flows must slow training down under tight bandwidth.
  auto run = [](double load_gbps) {
    ps::ClusterConfig cfg = tiny_config();
    cfg.n_workers = 4;
    cfg.method = core::SyncMethod::kP3;
    cfg.bandwidth = gbps(1);
    ps::Cluster cluster(tiny_workload(), cfg);
    if (load_gbps > 0) {
      inject_background_traffic(cluster, gbps(load_gbps), mib(1));
    }
    return cluster.run(1, 5).throughput;
  };
  const double quiet = run(0.0);
  const double busy = run(2.0);
  EXPECT_LT(busy, 0.95 * quiet);
}

TEST(BackgroundTraffic, ProtocolSurvivesForeignFlows) {
  ps::ClusterConfig cfg = tiny_config();
  cfg.n_workers = 3;
  cfg.method = core::SyncMethod::kBaseline;
  ps::Cluster cluster(tiny_workload(), cfg);
  inject_background_traffic(cluster, gbps(1), kib(256));
  const int iterations = 3;
  cluster.run(0, iterations);
  // Foreign traffic must not corrupt round accounting.
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_LE(cluster.slice_version(s), iterations);
    EXPECT_GE(cluster.slice_version(s), iterations - 1);
  }
}

TEST(BackgroundTraffic, InvalidLoadThrows) {
  ps::ClusterConfig cfg = tiny_config();
  ps::Cluster cluster(tiny_workload(), cfg);
  EXPECT_THROW(inject_background_traffic(cluster, 0.0, mib(1)),
               std::invalid_argument);
  EXPECT_THROW(inject_background_traffic(cluster, gbps(1), 0),
               std::invalid_argument);
}

TEST(MaxSpeedup, ComputesBestRatio) {
  Series base{"base", {1, 2}, {10.0, 20.0}};
  Series better{"p3", {1, 2}, {12.0, 30.0}};
  EXPECT_NEAR(max_speedup(base, better), 0.5, 1e-12);
}

TEST(MaxSpeedup, MismatchedAxesThrow) {
  Series a{"a", {1}, {10.0}};
  Series b{"b", {2}, {10.0}};
  EXPECT_THROW(max_speedup(a, b), std::invalid_argument);
}

TEST(MaxSpeedup, SkipsZeroBaseline) {
  Series base{"base", {1, 2}, {0.0, 10.0}};
  Series better{"p3", {1, 2}, {5.0, 11.0}};
  EXPECT_NEAR(max_speedup(base, better), 0.1, 1e-12);
}

TEST(MaxSpeedup, EmptySeriesYieldZero) {
  Series a{"a", {}, {}};
  Series b{"b", {}, {}};
  EXPECT_EQ(max_speedup(a, b), 0.0);
}

TEST(MaxSpeedup, AllZeroBaselineYieldsZeroNotInf) {
  Series base{"base", {1, 2}, {0.0, 0.0}};
  Series better{"p3", {1, 2}, {5.0, 11.0}};
  const double s = max_speedup(base, better);
  EXPECT_EQ(s, 0.0);
  EXPECT_TRUE(std::isfinite(s));
}

TEST(MaxSpeedup, NegativeBaselineIsSkippedLikeZero) {
  Series base{"base", {1, 2}, {-3.0, 10.0}};
  Series better{"p3", {1, 2}, {5.0, 12.0}};
  EXPECT_NEAR(max_speedup(base, better), 0.2, 1e-12);
}

TEST(MaxSpeedup, BaselineYLengthMismatchThrows) {
  // Same x grid, but the baseline lost a y point: comparing would misalign.
  Series base{"base", {1, 2}, {10.0}};
  Series better{"p3", {1, 2}, {11.0, 12.0}};
  EXPECT_THROW(max_speedup(base, better), std::invalid_argument);
}

TEST(MaxSpeedup, ImprovedYLengthMismatchThrows) {
  Series base{"base", {1, 2}, {10.0, 20.0}};
  Series better{"p3", {1, 2}, {11.0}};
  EXPECT_THROW(max_speedup(base, better), std::invalid_argument);
}

}  // namespace
}  // namespace p3::runner
