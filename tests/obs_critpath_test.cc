// Critical-path blame attribution over real traced runs: the walk must
// cover every iteration window exactly (telescoping contract), stay
// deterministic across reruns, and reproduce the paper's headline — P3
// removes the network wait from the critical path when the gradient volume
// fits under backward compute.
#include "obs/critpath.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ClusterConfig base_config(SyncMethod method, double bandwidth_gbps = 2.0) {
  ClusterConfig cfg;
  cfg.n_workers = 3;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.max_sim_time = 60.0;
  return cfg;
}

obs::BlameReport traced_blame(const ClusterConfig& cfg, int warmup = 1,
                              int measured = 3) {
  Cluster cluster(small_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(warmup, measured);
  return obs::analyze_critical_path(tracer, warmup);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + name;
  }
  ~TempFile() { std::remove(path.c_str()); }
};

class CritpathAllMethods : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(CritpathAllMethods, BlameCoversEveryIterationWindow) {
  const obs::BlameReport blame = traced_blame(base_config(GetParam()));
  EXPECT_TRUE(blame.problems.empty());
  ASSERT_EQ(blame.iterations.size(), 3u);
  EXPECT_GT(blame.events_processed, 0);
  // Fault-free fixed-roster traces resolve every chain link.
  EXPECT_EQ(blame.chain_stalls, 0);
  double total = 0.0;
  for (const obs::IterationBlame& ib : blame.iterations) {
    EXPECT_GT(ib.window(), 0.0);
    // The telescoping contract: segments partition the window exactly.
    EXPECT_NEAR(ib.attributed(), ib.window(), 1e-9);
    total += ib.window();
  }
  EXPECT_NEAR(blame.total_s, total, 1e-9);
  EXPECT_GE(blame.network_share(), 0.0);
  EXPECT_LE(blame.network_share(), 1.0);
  // Shares over all categories sum to 1 because seconds sum to the window.
  double share_sum = 0.0;
  for (int c = 0; c < obs::kBlameCount; ++c) {
    share_sum += blame.share(static_cast<obs::Blame>(c));
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CritpathAllMethods,
                         ::testing::ValuesIn(kAllMethods));

TEST(Critpath, SkipDropsWarmupPrefix) {
  const ClusterConfig cfg = base_config(SyncMethod::kP3);
  Cluster cluster(small_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(1, 3);
  const obs::BlameReport all = obs::analyze_critical_path(tracer, 0);
  const obs::BlameReport measured = obs::analyze_critical_path(tracer, 1);
  ASSERT_EQ(all.iterations.size(), 4u);
  ASSERT_EQ(measured.iterations.size(), 3u);
  // The first measured window starts at the warmup prefix's global finish.
  EXPECT_DOUBLE_EQ(measured.iterations[0].window_start,
                   all.iterations[0].window_end);
}

TEST(Critpath, DeterministicAcrossReruns) {
  const ClusterConfig cfg = base_config(SyncMethod::kP3);
  const obs::BlameReport a = traced_blame(cfg);
  const obs::BlameReport b = traced_blame(cfg);
  EXPECT_EQ(obs::format_blame(a), obs::format_blame(b));
  EXPECT_EQ(obs::format_what_ifs(obs::standard_what_ifs(a)),
            obs::format_what_ifs(obs::standard_what_ifs(b)));
}

TEST(Critpath, P3CollapsesNetworkShareWhenTrafficFitsUnderCompute) {
  // 2 Gbps: the toy model's gradients serialize in well under the backward
  // pass, so a priority schedule can hide them completely while FIFO
  // pipelines still pay queue + wire time on the path.
  const obs::BlameReport base =
      traced_blame(base_config(SyncMethod::kBaseline));
  const obs::BlameReport tf =
      traced_blame(base_config(SyncMethod::kTensorFlowStyle));
  const obs::BlameReport p3 = traced_blame(base_config(SyncMethod::kP3));
  EXPECT_LT(p3.network_share(), base.network_share());
  EXPECT_LT(p3.network_share(), tf.network_share());
}

TEST(Critpath, WhatIfKeepSemantics) {
  const obs::BlameReport blame = traced_blame(base_config(SyncMethod::kP3));
  const double mean =
      blame.total_s / static_cast<double>(blame.iterations.size());
  std::array<double, obs::kBlameCount> keep;
  keep.fill(1.0);
  // Keeping every category untouched reproduces the measured mean.
  EXPECT_NEAR(obs::estimate_mean_iteration(blame, keep), mean, 1e-12);
  keep.fill(0.0);
  EXPECT_NEAR(obs::estimate_mean_iteration(blame, keep), 0.0, 1e-12);

  const std::vector<obs::WhatIf> panel = obs::standard_what_ifs(blame);
  ASSERT_EQ(panel.size(), 3u);
  for (const obs::WhatIf& wi : panel) {
    // Interventions only remove path time, so estimates are lower bounds.
    EXPECT_LE(wi.estimated_mean_iteration_s, mean + 1e-12);
    EXPECT_GE(wi.speedup_vs_measured, 1.0 - 1e-9);
  }
}

TEST(Critpath, BlameCsvRoundTrips) {
  const obs::BlameReport blame =
      traced_blame(base_config(SyncMethod::kBaseline));
  TempFile file("obs_critpath_roundtrip.csv");
  obs::write_blame_csv(blame, file.path);
  const obs::BlameReport loaded = obs::load_blame_csv(file.path);
  ASSERT_EQ(loaded.iterations.size(), blame.iterations.size());
  for (std::size_t i = 0; i < blame.iterations.size(); ++i) {
    EXPECT_EQ(loaded.iterations[i].iteration, blame.iterations[i].iteration);
    for (int c = 0; c < obs::kBlameCount; ++c) {
      EXPECT_NEAR(loaded.iterations[i].seconds[static_cast<std::size_t>(c)],
                  blame.iterations[i].seconds[static_cast<std::size_t>(c)],
                  1e-8);
    }
  }
  EXPECT_NEAR(loaded.total_s, blame.total_s, 1e-6);
}

TEST(Critpath, LoadRejectsForeignCsv) {
  TempFile file("obs_critpath_bad.csv");
  std::FILE* f = std::fopen(file.path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("a,b,c\n1,2,3\n", f);
  std::fclose(f);
  EXPECT_THROW(obs::load_blame_csv(file.path), std::runtime_error);
}

TEST(Critpath, DiffAlignsByIterationAndSelfDiffIsZero) {
  const obs::BlameReport a = traced_blame(base_config(SyncMethod::kBaseline),
                                          /*warmup=*/1, /*measured=*/3);
  const obs::BlameReport b = traced_blame(base_config(SyncMethod::kBaseline),
                                          /*warmup=*/1, /*measured=*/2);
  const obs::BlameDiff self = obs::diff_blame(a, a);
  EXPECT_EQ(self.iterations_compared, 3);
  EXPECT_NEAR(self.delta_total_s, 0.0, 1e-12);
  for (double d : self.delta_seconds) EXPECT_NEAR(d, 0.0, 1e-12);
  // Different-length runs compare the aligned prefix.
  EXPECT_EQ(obs::diff_blame(a, b).iterations_compared, 2);
  // A slower variant shows up as positive deltas: diff Baseline at 2 Gbps
  // against the same protocol throttled to 0.5 Gbps.
  const obs::BlameReport slow =
      traced_blame(base_config(SyncMethod::kBaseline, 0.5));
  const obs::BlameDiff diff = obs::diff_blame(a, slow);
  EXPECT_GT(diff.delta_total_s, 0.0);
  const std::string text = obs::format_blame_diff(diff);
  EXPECT_NE(text.find("aligned iterations"), std::string::npos);
}

TEST(Critpath, EmptyTraceIsMalformed) {
  obs::Tracer tracer;
  const obs::BlameReport blame = obs::analyze_critical_path(tracer, 0);
  EXPECT_TRUE(blame.iterations.empty());
  EXPECT_FALSE(blame.problems.empty());
}

TEST(Critpath, RunResultExportsBlameShares) {
  // Surface #2: the same analysis lands in RunResult (and the registry)
  // when a tracer is attached.
  const ClusterConfig cfg = base_config(SyncMethod::kP3);
  Cluster cluster(small_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  const RunResult run = cluster.run(1, 3);
  const obs::BlameReport blame = obs::analyze_critical_path(tracer, 1);
  ASSERT_FALSE(blame.iterations.empty());
  EXPECT_EQ(run.blame_iterations,
            static_cast<std::int64_t>(blame.iterations.size()));
  EXPECT_DOUBLE_EQ(run.blame_network_share, blame.network_share());
  EXPECT_DOUBLE_EQ(run.blame_backward_share,
                   blame.share(obs::Blame::kBackward));
  const obs::Gauge* g = cluster.metrics().find_gauge("blame.network_share");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), blame.network_share());
}

TEST(Critpath, UntracedRunExportsNothing) {
  const ClusterConfig cfg = base_config(SyncMethod::kP3);
  Cluster cluster(small_workload(), cfg);
  const RunResult run = cluster.run(1, 3);
  EXPECT_EQ(run.blame_iterations, 0);
  EXPECT_EQ(cluster.metrics().find_gauge("blame.network_share"), nullptr);
}

}  // namespace
}  // namespace p3::ps
