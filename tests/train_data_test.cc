#include "train/data.h"

#include <gtest/gtest.h>

#include <set>

namespace p3::train {
namespace {

TEST(GaussianMixture, Shapes) {
  MixtureConfig cfg;
  cfg.classes = 5;
  cfg.dim = 8;
  cfg.train_per_class = 20;
  cfg.test_per_class = 10;
  const Dataset ds = make_gaussian_mixture(cfg);
  EXPECT_EQ(ds.train_x.rows(), 100u);
  EXPECT_EQ(ds.train_x.cols(), 8u);
  EXPECT_EQ(ds.train_y.size(), 100u);
  EXPECT_EQ(ds.test_x.rows(), 50u);
  EXPECT_EQ(ds.classes, 5u);
  EXPECT_EQ(ds.dim, 8u);
}

TEST(GaussianMixture, AllClassesPresent) {
  MixtureConfig cfg;
  cfg.classes = 10;
  cfg.train_per_class = 5;
  cfg.test_per_class = 2;
  const Dataset ds = make_gaussian_mixture(cfg);
  std::set<int> train_classes(ds.train_y.begin(), ds.train_y.end());
  EXPECT_EQ(train_classes.size(), 10u);
}

TEST(GaussianMixture, DeterministicForSeed) {
  MixtureConfig cfg;
  cfg.seed = 99;
  const Dataset a = make_gaussian_mixture(cfg);
  const Dataset b = make_gaussian_mixture(cfg);
  EXPECT_EQ(a.train_x.raw(), b.train_x.raw());
  cfg.seed = 100;
  const Dataset c = make_gaussian_mixture(cfg);
  EXPECT_NE(a.train_x.raw(), c.train_x.raw());
}

TEST(GaussianMixture, NoiseControlsOverlap) {
  // Nearest-centroid accuracy should degrade with noise.
  auto centroid_accuracy = [](double noise) {
    MixtureConfig cfg;
    cfg.noise = noise;
    cfg.train_per_class = 50;
    cfg.test_per_class = 50;
    const Dataset ds = make_gaussian_mixture(cfg);
    // Compute class centroids from train set.
    std::vector<std::vector<double>> cent(cfg.classes,
                                          std::vector<double>(cfg.dim, 0.0));
    std::vector<int> counts(cfg.classes, 0);
    for (std::size_t r = 0; r < ds.train_x.rows(); ++r) {
      const int y = ds.train_y[r];
      ++counts[static_cast<std::size_t>(y)];
      for (std::size_t d = 0; d < cfg.dim; ++d) {
        cent[static_cast<std::size_t>(y)][d] += ds.train_x.at(r, d);
      }
    }
    for (std::size_t k = 0; k < cfg.classes; ++k) {
      for (auto& v : cent[k]) v /= counts[k];
    }
    std::size_t correct = 0;
    for (std::size_t r = 0; r < ds.test_x.rows(); ++r) {
      double best = 1e300;
      int arg = -1;
      for (std::size_t k = 0; k < cfg.classes; ++k) {
        double d2 = 0.0;
        for (std::size_t d = 0; d < cfg.dim; ++d) {
          const double diff = ds.test_x.at(r, d) - cent[k][d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          arg = static_cast<int>(k);
        }
      }
      if (arg == ds.test_y[r]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(ds.test_x.rows());
  };
  EXPECT_GT(centroid_accuracy(0.2), 0.99);
  EXPECT_LT(centroid_accuracy(2.5), centroid_accuracy(0.2));
}

TEST(Dataset, BatchExtractionFollowsOrder) {
  MixtureConfig cfg;
  cfg.classes = 2;
  cfg.dim = 3;
  cfg.train_per_class = 4;
  cfg.test_per_class = 1;
  const Dataset ds = make_gaussian_mixture(cfg);
  std::vector<std::size_t> order = {7, 0, 3, 1, 2, 4, 5, 6};
  const Tensor batch = ds.train_batch(1, 3, order);
  EXPECT_EQ(batch.rows(), 2u);
  EXPECT_FLOAT_EQ(batch.at(0, 0), ds.train_x.at(0, 0));
  EXPECT_FLOAT_EQ(batch.at(1, 0), ds.train_x.at(3, 0));
  const auto labels = ds.train_batch_labels(1, 3, order);
  EXPECT_EQ(labels[0], ds.train_y[0]);
  EXPECT_EQ(labels[1], ds.train_y[3]);
}

TEST(Dataset, BatchOutOfRangeThrows) {
  MixtureConfig cfg;
  cfg.classes = 2;
  cfg.train_per_class = 2;
  cfg.test_per_class = 1;
  const Dataset ds = make_gaussian_mixture(cfg);
  std::vector<std::size_t> order = {0, 1, 2, 3};
  EXPECT_THROW(ds.train_batch(0, 5, order), std::out_of_range);
}

TEST(TwoSpirals, ShapesAndLabels) {
  const Dataset ds = make_two_spirals(30, 10, 0.01, 5);
  EXPECT_EQ(ds.train_x.rows(), 60u);
  EXPECT_EQ(ds.test_x.rows(), 20u);
  EXPECT_EQ(ds.classes, 2u);
  EXPECT_EQ(ds.dim, 2u);
  std::set<int> labels(ds.train_y.begin(), ds.train_y.end());
  EXPECT_EQ(labels.size(), 2u);
}

}  // namespace
}  // namespace p3::train
