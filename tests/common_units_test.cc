#include "common/units.h"

#include <gtest/gtest.h>

namespace p3 {
namespace {

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(gbps(1.0), 1e9);
  EXPECT_DOUBLE_EQ(gbps(10.0), 1e10);
  EXPECT_DOUBLE_EQ(mbps(100.0), 1e8);
}

TEST(Units, SizeConversions) {
  EXPECT_EQ(kib(1), 1024);
  EXPECT_EQ(mib(1), 1024 * 1024);
  EXPECT_EQ(gib(1), 1024LL * 1024 * 1024);
  EXPECT_EQ(mib(2.5), 2621440);
}

TEST(Units, TransferTime) {
  // 1 GB at 8 Gbps = 1 second.
  EXPECT_DOUBLE_EQ(transfer_time(1'000'000'000, gbps(8)), 1.0);
  // 125 MB at 1 Gbps = 1 second.
  EXPECT_DOUBLE_EQ(transfer_time(125'000'000, gbps(1)), 1.0);
  // Zero bytes transfer instantly.
  EXPECT_DOUBLE_EQ(transfer_time(0, gbps(1)), 0.0);
}

TEST(Units, BytesInInterval) {
  EXPECT_EQ(bytes_in(1.0, gbps(8)), 1'000'000'000);
  EXPECT_EQ(bytes_in(0.5, gbps(1)), 62'500'000);
}

TEST(Units, TransferRoundTrip) {
  const Bytes size = 102'760'544;  // ~VGG-19 fc6 gradient bytes / 4
  const BitsPerSec rate = gbps(15);
  EXPECT_NEAR(bytes_in(transfer_time(size, rate), rate),
              static_cast<double>(size), 1.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(ms(10), 0.01);
  EXPECT_DOUBLE_EQ(us(50), 5e-5);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1'500), "1.50 KB");
  EXPECT_EQ(format_bytes(102'760'544), "102.76 MB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(gbps(4)), "4.00 Gbps");
  EXPECT_EQ(format_rate(mbps(250)), "250.00 Mbps");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(1.5), "1.500 s");
  EXPECT_EQ(format_time(0.010), "10.00 ms");
  EXPECT_EQ(format_time(25e-6), "25.00 us");
  EXPECT_EQ(format_time(3e-9), "3.0 ns");
}

}  // namespace
}  // namespace p3
