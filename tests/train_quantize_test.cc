#include "train/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "train/data.h"
#include "train/trainer.h"

namespace p3::train {
namespace {

std::vector<Param> one_layer(std::vector<float> grads) {
  std::vector<Param> params(1);
  params[0].value = Tensor(1, grads.size());
  params[0].grad = Tensor(1, grads.size());
  params[0].grad.raw() = std::move(grads);
  return params;
}

TEST(Qsgd, PreservesSign) {
  auto params = one_layer({1.0f, -2.0f, 0.5f, -0.1f});
  QsgdQuantizer q(4);
  Rng rng(1);
  const auto out = q.transform(params, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    const float orig = params[0].grad.raw()[i];
    const float quant = out[0].raw()[i];
    if (quant != 0.0f) {
      EXPECT_GT(quant * orig, 0.0f) << "index " << i;
    }
  }
}

TEST(Qsgd, ZeroGradientStaysZero) {
  auto params = one_layer({0.0f, 0.0f});
  QsgdQuantizer q(4);
  Rng rng(1);
  const auto out = q.transform(params, rng);
  EXPECT_DOUBLE_EQ(out[0].norm(), 0.0);
}

TEST(Qsgd, UnbiasedOverManyDraws) {
  // E[Q(v)] = v: average many independent quantizations.
  auto params = one_layer({0.3f, -0.7f, 0.05f, 0.9f});
  QsgdQuantizer q(2);
  Rng rng(7);
  Tensor mean(1, 4);
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    const auto out = q.transform(params, rng);
    mean.add_scaled(out[0], 1.0f / trials);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean.raw()[i], params[0].grad.raw()[i], 0.02) << i;
  }
}

TEST(Qsgd, ValuesOnQuantizationGrid) {
  auto params = one_layer({0.6f, -0.3f, 0.2f});
  const int s = 4;
  QsgdQuantizer q(s);
  Rng rng(3);
  const double norm = params[0].grad.norm();
  const auto out = q.transform(params, rng);
  for (float v : out[0].raw()) {
    const double level = std::abs(v) / norm * s;
    EXPECT_NEAR(level, std::round(level), 1e-5);
  }
}

TEST(Qsgd, BitsPerElement) {
  EXPECT_NEAR(QsgdQuantizer(1).bits_per_element(), 2.0, 1e-12);
  EXPECT_NEAR(QsgdQuantizer(3).bits_per_element(), 3.0, 1e-12);
}

TEST(Qsgd, InvalidLevelsThrow) {
  EXPECT_THROW(QsgdQuantizer(0), std::invalid_argument);
}

TEST(OneBit, TwoLevelOutput) {
  auto params = one_layer({1.0f, 2.0f, -3.0f, -1.0f});
  OneBitQuantizer q(params);
  const auto out = q.transform(params);
  // Positive entries -> mean(1,2)=1.5; negative -> mean(-3,-1)=-2.
  EXPECT_FLOAT_EQ(out[0].raw()[0], 1.5f);
  EXPECT_FLOAT_EQ(out[0].raw()[1], 1.5f);
  EXPECT_FLOAT_EQ(out[0].raw()[2], -2.0f);
  EXPECT_FLOAT_EQ(out[0].raw()[3], -2.0f);
}

TEST(OneBit, ErrorFeedbackCarriesResidual) {
  auto params = one_layer({1.0f, 2.0f});
  OneBitQuantizer q(params);
  q.transform(params);
  // Residual = (1-1.5, 2-1.5) = (-0.5, 0.5); norm = sqrt(0.5).
  EXPECT_NEAR(q.residual_norm(), std::sqrt(0.5), 1e-6);
}

TEST(OneBit, ResidualCorrectsOverTime) {
  // With constant gradient (1, 3), the long-run *sum* of reconstructions
  // must track the true sum (error feedback guarantees no drift).
  auto params = one_layer({1.0f, 3.0f});
  OneBitQuantizer q(params);
  double recon_sum0 = 0.0;
  double recon_sum1 = 0.0;
  const int iters = 200;
  for (int i = 0; i < iters; ++i) {
    params[0].grad.raw() = {1.0f, 3.0f};
    const auto out = q.transform(params);
    recon_sum0 += out[0].raw()[0];
    recon_sum1 += out[0].raw()[1];
  }
  EXPECT_NEAR(recon_sum0 / iters, 1.0, 0.05);
  EXPECT_NEAR(recon_sum1 / iters, 3.0, 0.05);
}

TEST(QuantizedTraining, BothModesConverge) {
  MixtureConfig mc;
  mc.classes = 4;
  mc.dim = 8;
  mc.train_per_class = 64;
  mc.test_per_class = 32;
  mc.noise = 0.4;
  const Dataset ds = make_gaussian_mixture(mc);

  for (auto mode : {AggregationMode::kQsgd, AggregationMode::kOneBit}) {
    TrainerConfig cfg;
    cfg.n_workers = 4;
    cfg.batch_per_worker = 16;
    cfg.epochs = 20;
    cfg.hidden = {16};
    cfg.sgd.lr = 0.05;
    cfg.sgd.momentum = 0.9;
    cfg.mode = mode;
    cfg.qsgd_levels = 4;
    ParallelTrainer trainer(ds, cfg);
    const auto stats = trainer.train();
    EXPECT_GT(stats.back().val_accuracy, 0.85)
        << (mode == AggregationMode::kQsgd ? "qsgd" : "onebit");
  }
}

TEST(QuantizedTraining, MoreLevelsTrackSyncCloser) {
  MixtureConfig mc;
  mc.classes = 4;
  mc.dim = 8;
  mc.train_per_class = 64;
  mc.test_per_class = 32;
  mc.noise = 0.4;
  const Dataset ds = make_gaussian_mixture(mc);

  auto final_loss = [&](AggregationMode mode, int levels) {
    TrainerConfig cfg;
    cfg.n_workers = 4;
    cfg.batch_per_worker = 16;
    cfg.epochs = 12;
    cfg.hidden = {16};
    cfg.sgd.lr = 0.05;
    cfg.sgd.momentum = 0.9;
    cfg.mode = mode;
    cfg.qsgd_levels = levels;
    ParallelTrainer trainer(ds, cfg);
    return trainer.train().back().train_loss;
  };
  const double sync = final_loss(AggregationMode::kFullSync, 0);
  const double q16 = final_loss(AggregationMode::kQsgd, 16);
  const double q1 = final_loss(AggregationMode::kQsgd, 1);
  // Finer quantization lands closer to the exact-gradient loss.
  EXPECT_LT(std::abs(q16 - sync), std::abs(q1 - sync) + 0.02);
}

}  // namespace
}  // namespace p3::train
