// Rack-scale hierarchy end to end: hierarchical runs are bit-identical
// rerun-to-rerun and across runner thread counts, P3's urgent slices
// overtake queued bulk at an oversubscribed ToR uplink without a single
// priority inversion, rack aggregation conserves gradients exactly-once
// through aggregator crashes and rack-severing partitions, and a flat
// configuration keeps the whole plane disarmed.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "model/zoo.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

net::Topology two_racks(double oversub) {
  net::Topology topo;
  topo.racks = {{0, 1}, {2, 3}};
  topo.oversubscription = oversub;
  return topo;
}

ClusterConfig hier_config(SyncMethod method, double oversub,
                          bool aggregation) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.topology = two_racks(oversub);
  cfg.rack_aggregation = aggregation;
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

/// Exactly-once check: every slice completed every round, every worker saw
/// every layer.
void expect_converged(const Cluster& cluster, int layers,
                      std::int64_t iterations, int workers) {
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Construction contracts.
// ---------------------------------------------------------------------------

TEST(HierConfig, RejectsElasticJoinsUnderTopology) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 2.0, false);
  cfg.faults.joins.push_back({4, 0.1});
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

TEST(HierConfig, RejectsAggregationWithoutTopology) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 2.0, true);
  cfg.topology = net::Topology{};
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

TEST(HierConfig, RejectsAggregationWithDedicatedServers) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 2.0, true);
  cfg.dedicated_servers = true;
  cfg.topology.racks = {{0, 1, 2, 3}, {4, 5, 6, 7}};  // workers + servers
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

TEST(HierConfig, MalformedTopologyRejectedAtClusterConstruction) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 0.5, false);
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Flat configurations keep the plane disarmed: no rack state, all counters
// zero — the pre-hierarchy protocol, bit for bit.
// ---------------------------------------------------------------------------

TEST(HierPlane, StaysDisarmedOnFlatTopology) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 2.0, false);
  cfg.topology = net::Topology{};
  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(1, 3);
  cluster.drain();
  EXPECT_FALSE(cluster.hierarchy_armed());
  EXPECT_FALSE(cluster.rack_aggregation_armed());
  EXPECT_EQ(result.uplink_overtakes, 0);
  EXPECT_EQ(result.uplink_priority_inversions, 0);
  EXPECT_EQ(result.tor_uplink_bytes, 0);
  EXPECT_EQ(result.agg_combined_pushes, 0);
  EXPECT_EQ(result.agg_param_broadcasts, 0);
  EXPECT_EQ(result.agg_fallback_pushes, 0);
  expect_converged(cluster, 4, 4, 4);
}

// ---------------------------------------------------------------------------
// Golden determinism: every method converges exactly-once on the
// oversubscribed fabric (with and without aggregation), and hierarchical
// sweeps are bit-identical rerun-to-rerun and across 1/2/4 runner threads.
// ---------------------------------------------------------------------------

class HierAllMethods
    : public ::testing::TestWithParam<std::tuple<SyncMethod, bool>> {};

TEST_P(HierAllMethods, ConvergesExactlyOnceOnOversubscribedFabric) {
  const auto [method, aggregation] = GetParam();
  Cluster cluster(small_workload(), hier_config(method, 4.0, aggregation));
  const int iterations = 5;
  const auto result = cluster.run(2, iterations - 2);
  cluster.drain();

  EXPECT_TRUE(cluster.hierarchy_armed());
  EXPECT_EQ(cluster.rack_aggregation_armed(), aggregation);
  EXPECT_GT(result.tor_uplink_bytes, 0);
  EXPECT_EQ(result.uplink_priority_inversions, 0);
  if (aggregation) {
    // Every cross-tier push went through a rack pre-reduce...
    EXPECT_GT(result.agg_combined_pushes, 0);
    // ...and nothing needed the direct fallback on a healthy fabric.
    EXPECT_EQ(result.agg_fallback_pushes, 0);
  } else {
    EXPECT_EQ(result.agg_combined_pushes, 0);
  }
  expect_converged(cluster, 4, iterations, 4);
  EXPECT_TRUE(cluster.simulator().idle());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, HierAllMethods,
    ::testing::Combine(::testing::ValuesIn(kAllMethods), ::testing::Bool()));

TEST(HierDeterminism, SweepBitIdenticalAcrossRunnerThreads) {
  struct Point {
    SyncMethod method;
    double oversub;
    bool aggregation;
  };
  const std::vector<Point> grid = {
      {SyncMethod::kP3, 4.0, true},
      {SyncMethod::kBaseline, 2.0, false},
      {SyncMethod::kPoseidonWFBP, 4.0, true},
  };
  const auto run_point = [](const Point& p) {
    Cluster cluster(small_workload(),
                    hier_config(p.method, p.oversub, p.aggregation));
    auto r = cluster.run(1, 4);
    cluster.drain();
    return r;
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& p : grid) {
      jobs.push_back([=] { return run_point(p); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.tor_uplink_bytes, b.tor_uplink_bytes) << "point " << i;
      EXPECT_EQ(a.uplink_overtakes, b.uplink_overtakes) << "point " << i;
      EXPECT_EQ(a.agg_combined_pushes, b.agg_combined_pushes)
          << "point " << i;
      EXPECT_EQ(a.agg_param_broadcasts, b.agg_param_broadcasts)
          << "point " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Priority semantics at the shared port: under 4:1 oversubscription P3's
// urgent first-layer slices overtake queued later-layer bulk at the ToR
// uplink, and the priority discipline never inverts. Baseline (single
// monolithic priority-0 pushes) has nothing to overtake with.
// ---------------------------------------------------------------------------

TEST(HierPriority, P3SlicesOvertakeBulkAtTheUplinkWithoutInversion) {
  Cluster cluster(small_workload(),
                  hier_config(SyncMethod::kP3, 4.0, false));
  const auto result = cluster.run(2, 3);
  cluster.drain();
  EXPECT_GT(result.uplink_overtakes, 0);
  EXPECT_EQ(result.uplink_priority_inversions, 0);
  expect_converged(cluster, 4, 5, 4);
}

TEST(HierPriority, FifoPortAblationForfeitsTheOvertakes) {
  ClusterConfig cfg = hier_config(SyncMethod::kP3, 4.0, false);
  cfg.topology.fifo_ports = true;
  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(2, 3);
  cluster.drain();
  // FIFO service starts bulk while urgent slices wait: inversions appear,
  // overtakes vanish — and the protocol still converges (slower).
  EXPECT_EQ(result.uplink_overtakes, 0);
  EXPECT_GT(result.uplink_priority_inversions, 0);
  expect_converged(cluster, 4, 5, 4);
}

// ---------------------------------------------------------------------------
// Chaos composition: the aggregation tree must fail *down* to the direct
// path, never lose or double-apply a contribution.
// ---------------------------------------------------------------------------

ClusterConfig chaos_config(SyncMethod method) {
  ClusterConfig cfg = hier_config(method, 4.0, true);
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;  // fail fast if recovery wedges
  return cfg;
}

TEST(HierChaos, AggregatorCrashFallsBackToDirectPushExactlyOnce) {
  ClusterConfig cfg = chaos_config(SyncMethod::kP3);
  // Node 0 aggregates rack 0; crash it mid-run and bring it back. Its rack
  // peer (node 1) must re-route pushes directly to the shard leaders until
  // its view sees the aggregator alive again.
  cfg.faults.crashes.push_back({0, 0.08, 0.15});
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_GT(result.crashes, 0);
  EXPECT_GT(result.restarts, 0);
  // The surviving rack peer bypassed the dead aggregator...
  EXPECT_GT(result.agg_fallback_pushes, 0);
  // ...the tree still carried traffic outside the outage...
  EXPECT_GT(result.agg_combined_pushes, 0);
  // ...and the contribution ledger kept every slice exactly-once through
  // the crash, the re-pushes, and any stale aggregated covers.
  expect_converged(cluster, 4, iterations, 4);
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(HierChaos, RackSeveringPartitionParksAndDrainsOnHeal) {
  ClusterConfig cfg = chaos_config(SyncMethod::kP3);
  cfg.faults.lease_duration = 0.1;
  // Cleave rack 0 from rack 1 (the uplink dies), then heal.
  net::NetPartition cut;
  cut.side_a = {0, 1};
  cut.side_b = {2, 3};
  cut.start = 0.05;
  cut.heal = 0.4;
  cfg.faults.partitions.push_back(cut);
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_GT(result.partition_drops, 0);
  // The cut-off rack parked its cross-rack pushes instead of burning them
  // against a severed uplink...
  EXPECT_GT(result.parked_pushes, 0);
  // ...and heal drained them without loss or double-apply.
  EXPECT_EQ(result.cross_partition_deliveries, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, 4);
  EXPECT_TRUE(cluster.simulator().idle());
}

}  // namespace
}  // namespace p3::ps
