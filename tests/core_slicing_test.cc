#include "core/slicing.h"

#include <gtest/gtest.h>

#include <set>

#include "model/zoo.h"

namespace p3::core {
namespace {

TEST(PartitionKvstore, SmallLayersStayWhole) {
  Rng rng(1);
  const auto m = model::toy_custom({100, 200, 300});
  const auto p = partition_kvstore(m, 4, 1'000'000, rng);
  EXPECT_EQ(p.num_slices(), 3);
  for (const auto& s : p.slices) {
    EXPECT_GE(s.server, 0);
    EXPECT_LT(s.server, 4);
  }
}

TEST(PartitionKvstore, LargeLayersSplitEqually) {
  Rng rng(1);
  const auto m = model::toy_custom({4'000'000});
  const auto p = partition_kvstore(m, 4, 1'000'000, rng);
  EXPECT_EQ(p.num_slices(), 4);
  std::set<int> servers;
  for (const auto& s : p.slices) {
    EXPECT_EQ(s.params, 1'000'000);
    servers.insert(s.server);
  }
  EXPECT_EQ(servers.size(), 4u);  // one shard per server
}

TEST(PartitionKvstore, RemainderSpreadsOverFirstShards) {
  Rng rng(1);
  const auto m = model::toy_custom({1'000'003});
  const auto p = partition_kvstore(m, 4, 1'000'000, rng);
  ASSERT_EQ(p.num_slices(), 4);
  EXPECT_EQ(p.slices[0].params, 250'001);
  EXPECT_EQ(p.slices[3].params, 250'000);
  EXPECT_EQ(p.total_params(), 1'000'003);
}

TEST(PartitionKvstore, ConservesParameters) {
  Rng rng(7);
  for (const auto& m : {model::resnet50(), model::vgg19(), model::sockeye()}) {
    const auto p = partition_kvstore(m, 4, 1'000'000, rng);
    EXPECT_EQ(p.total_params(), m.total_params()) << m.name;
  }
}

TEST(PartitionKvstore, DeterministicForSeed) {
  const auto m = model::resnet50();
  Rng rng_a(5), rng_b(5);
  const auto pa = partition_kvstore(m, 4, 1'000'000, rng_a);
  const auto pb = partition_kvstore(m, 4, 1'000'000, rng_b);
  ASSERT_EQ(pa.num_slices(), pb.num_slices());
  for (std::int64_t i = 0; i < pa.num_slices(); ++i) {
    EXPECT_EQ(pa.slices[static_cast<std::size_t>(i)].server,
              pb.slices[static_cast<std::size_t>(i)].server);
  }
}

TEST(PartitionKvstore, Vgg19Fc6ShardsAreCoarse) {
  // The motivating pathology: on 4 servers, fc6 still produces four
  // ~25.7M-parameter shards (~103 MB each on the wire).
  Rng rng(1);
  const auto p = partition_kvstore(model::vgg19(), 4, 1'000'000, rng);
  std::int64_t biggest = 0;
  for (const auto& s : p.slices) biggest = std::max(biggest, s.params);
  EXPECT_NEAR(static_cast<double>(biggest), 102'764'544 / 4.0, 2.0);
}

TEST(PartitionP3, RespectsSliceBound) {
  const auto m = model::vgg19();
  const auto p = partition_p3(m, 4, 50'000);
  for (const auto& s : p.slices) {
    EXPECT_GT(s.params, 0);
    EXPECT_LE(s.params, 50'000);
  }
  EXPECT_EQ(p.total_params(), m.total_params());
}

TEST(PartitionP3, RoundRobinAssignment) {
  const auto m = model::toy_custom({150'000});  // 3 slices of 50k
  const auto p = partition_p3(m, 4, 50'000);
  ASSERT_EQ(p.num_slices(), 3);
  EXPECT_EQ(p.slices[0].server, 0);
  EXPECT_EQ(p.slices[1].server, 1);
  EXPECT_EQ(p.slices[2].server, 2);
}

TEST(PartitionP3, RoundRobinContinuesAcrossLayers) {
  const auto m = model::toy_custom({50'000, 50'000, 50'000, 50'000, 50'000});
  const auto p = partition_p3(m, 2, 50'000);
  EXPECT_EQ(p.slices[0].server, 0);
  EXPECT_EQ(p.slices[1].server, 1);
  EXPECT_EQ(p.slices[2].server, 0);
  EXPECT_EQ(p.slices[3].server, 1);
  EXPECT_EQ(p.slices[4].server, 0);
}

TEST(PartitionP3, PrioritiesFollowForwardOrder) {
  const auto m = model::toy_custom({60'000, 60'000, 60'000});
  const auto p = partition_p3(m, 2, 50'000);
  for (const auto& s : p.slices) {
    EXPECT_EQ(s.priority, s.layer);  // layer 0 = most urgent
  }
  // First layer's slices beat last layer's.
  EXPECT_LT(p.slices[p.layer_slices[0][0]].priority,
            p.slices[p.layer_slices[2][0]].priority);
}

TEST(PartitionP3, LayerSliceIndexConsistent) {
  const auto m = model::resnet50();
  const auto p = partition_p3(m, 4, 50'000);
  for (int l = 0; l < m.num_layers(); ++l) {
    for (auto id : p.layer_slices[static_cast<std::size_t>(l)]) {
      EXPECT_EQ(p.slices[static_cast<std::size_t>(id)].layer, l);
    }
  }
  // Slice ids are dense 0..n-1.
  for (std::int64_t i = 0; i < p.num_slices(); ++i) {
    EXPECT_EQ(p.slices[static_cast<std::size_t>(i)].id, i);
  }
}

TEST(PartitionP3, Vgg19SliceCount) {
  const auto p = partition_p3(model::vgg19(), 4, 50'000);
  // 143.7M params / 50k ≈ 2874 slices plus per-layer rounding.
  EXPECT_GT(p.num_slices(), 2870);
  EXPECT_LT(p.num_slices(), 2930);
}

TEST(PartitionP3, LayerBytes) {
  const auto m = model::toy_custom({75'000});
  const auto p = partition_p3(m, 2, 50'000);
  EXPECT_EQ(p.layer_bytes(0), 4 * 75'000);
}

TEST(Partition, InvalidArgumentsThrow) {
  Rng rng(1);
  const auto m = model::toy_uniform(2, 100);
  EXPECT_THROW(partition_p3(m, 0, 50'000), std::invalid_argument);
  EXPECT_THROW(partition_p3(m, 2, 0), std::invalid_argument);
  EXPECT_THROW(partition_kvstore(m, 2, 0, rng), std::invalid_argument);
  EXPECT_THROW(partition_kvstore(model::ModelSpec{}, 2, 100, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace p3::core
