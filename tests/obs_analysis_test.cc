#include "obs/analysis.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace p3::obs {
namespace {

LifecycleRecord rec(Stage stage, int worker, std::int32_t slice,
                    std::int64_t iteration, int priority, TimeS t,
                    Bytes bytes = 0) {
  LifecycleRecord r;
  r.stage = stage;
  r.worker = worker;
  r.slice = slice;
  r.iteration = iteration;
  r.priority = static_cast<std::int32_t>(priority);
  r.bytes = bytes;
  r.t = t;
  return r;
}

TEST(Analyze, SingleRoundTripBreakdown) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kGradReady, 0, 0, 0, 0, 0.00),
      rec(Stage::kEnqueue, 0, 0, 0, 0, 0.01),
      rec(Stage::kSend, 0, 0, 0, 0, 0.03),
      rec(Stage::kServerRecv, 0, 0, 0, 0, 0.05),
      rec(Stage::kAggregate, 0, 0, 0, 0, 0.06),
      rec(Stage::kParamReady, 0, 0, 0, 0, 0.10),
  };
  const Report report = analyze(records);
  EXPECT_EQ(report.records, 6);
  EXPECT_EQ(report.round_trips, 1);
  ASSERT_EQ(report.per_priority.size(), 1u);
  const StageBreakdown& b = report.per_priority[0];
  EXPECT_EQ(b.priority, 0);
  EXPECT_EQ(b.round_trips, 1);
  EXPECT_NEAR(b.mean_queue_s, 0.02, 1e-12);   // enqueue -> send
  EXPECT_NEAR(b.mean_wire_s, 0.02, 1e-12);    // send -> server recv
  EXPECT_NEAR(b.mean_server_s, 0.01, 1e-12);  // recv -> last aggregate
  EXPECT_NEAR(b.mean_return_s, 0.04, 1e-12);  // aggregate -> param ready
  EXPECT_NEAR(b.mean_total_s, 0.10, 1e-12);   // grad ready -> param ready
}

TEST(Analyze, IncompleteRoundTripNotCounted) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kGradReady, 0, 0, 0, 0, 0.0),
      rec(Stage::kEnqueue, 0, 0, 0, 0, 0.01),
      rec(Stage::kSend, 0, 0, 0, 0, 0.02),
      // never reaches param-ready
  };
  const Report report = analyze(records);
  EXPECT_EQ(report.round_trips, 0);
  EXPECT_TRUE(report.per_priority.empty());
}

TEST(Analyze, GroupsByPriorityClass) {
  std::vector<LifecycleRecord> records;
  // Two round trips at priority 0 and one at priority 3.
  for (int i = 0; i < 2; ++i) {
    records.push_back(rec(Stage::kGradReady, 0, i, 0, 0, 0.0));
    records.push_back(rec(Stage::kParamReady, 0, i, 0, 0, 0.1));
  }
  records.push_back(rec(Stage::kGradReady, 0, 9, 0, 3, 0.0));
  records.push_back(rec(Stage::kParamReady, 0, 9, 0, 3, 0.4));

  const Report report = analyze(records);
  EXPECT_EQ(report.round_trips, 3);
  ASSERT_EQ(report.per_priority.size(), 2u);
  EXPECT_EQ(report.per_priority[0].priority, 0);
  EXPECT_EQ(report.per_priority[0].round_trips, 2);
  EXPECT_NEAR(report.per_priority[0].mean_total_s, 0.1, 1e-12);
  EXPECT_EQ(report.per_priority[1].priority, 3);
  EXPECT_EQ(report.per_priority[1].round_trips, 1);
  EXPECT_NEAR(report.per_priority[1].mean_total_s, 0.4, 1e-12);
}

TEST(Analyze, DetectsPriorityInversion) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kEnqueue, 0, 1, 0, 5, 0.00),         // bulk fragment
      rec(Stage::kEnqueue, 0, 0, 0, 1, 0.01),         // urgent fragment
      rec(Stage::kSend, 0, 1, 0, 5, 0.02, 1000),      // bulk while urgent waits
      rec(Stage::kSend, 0, 0, 0, 1, 0.03, 500),       // urgent drains: fine
  };
  const Report report = analyze(records);
  EXPECT_EQ(report.inversion.events, 1);
  EXPECT_EQ(report.inversion.bytes, 1000);
}

TEST(Analyze, NoInversionAcrossWorkers) {
  // An urgent fragment on worker 1 does not indict worker 0's send.
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kEnqueue, 1, 0, 0, 1, 0.00),
      rec(Stage::kEnqueue, 0, 1, 0, 5, 0.01),
      rec(Stage::kSend, 0, 1, 0, 5, 0.02, 1000),
  };
  EXPECT_EQ(analyze(records).inversion.events, 0);
}

TEST(Analyze, QueueDepthSeries) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kEnqueue, 0, 1, 0, 5, 0.00),
      rec(Stage::kEnqueue, 0, 0, 0, 1, 0.01),
      rec(Stage::kSend, 0, 1, 0, 5, 0.02),
      rec(Stage::kSend, 0, 0, 0, 1, 0.03),
  };
  const Report report = analyze(records);
  ASSERT_EQ(report.queues.size(), 1u);
  const QueueDepthStats& q = report.queues[0];
  EXPECT_EQ(q.worker, 0);
  EXPECT_EQ(q.peak_depth, 2);
  // Depth is 1 for 10 ms, 2 for 10 ms, 1 for 10 ms over a 30 ms window.
  EXPECT_NEAR(q.mean_depth, 4.0 / 3.0, 1e-9);
  const std::vector<std::pair<TimeS, std::int64_t>> expected = {
      {0.00, 1}, {0.01, 2}, {0.02, 1}, {0.03, 0}};
  EXPECT_EQ(q.series, expected);
}

TEST(Violations, CleanChainPasses) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kGradReady, 0, 0, 0, 0, 0.00),
      rec(Stage::kEnqueue, 0, 0, 0, 0, 0.01),
      rec(Stage::kSend, 0, 0, 0, 0, 0.02),
      rec(Stage::kServerRecv, 0, 0, 0, 0, 0.03),
      rec(Stage::kAggregate, 0, 0, 0, 0, 0.04),
      rec(Stage::kNotify, 0, 0, 0, 0, 0.05),
      rec(Stage::kPull, 0, 0, 0, 0, 0.06),
      rec(Stage::kParamReady, 0, 0, 0, 0, 0.07),
  };
  EXPECT_TRUE(lifecycle_violations(records, /*strict=*/true).empty());
}

TEST(Violations, DetectsStageRegression) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kEnqueue, 0, 0, 0, 0, 0.02),
      rec(Stage::kSend, 0, 0, 0, 0, 0.01),  // sent before it was enqueued
  };
  const auto v = lifecycle_violations(records);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("send"), std::string::npos);
  EXPECT_NE(v[0].find("precedes"), std::string::npos);
}

TEST(Violations, MissingStagesAreSkippedNotFlagged) {
  // P3 broadcast: no notify, no pull — chain checks only what was seen.
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kGradReady, 0, 0, 0, 0, 0.00),
      rec(Stage::kParamReady, 0, 0, 0, 0, 0.05),
  };
  EXPECT_TRUE(lifecycle_violations(records, /*strict=*/true).empty());
}

TEST(Violations, PullBeforeNotifyOnlyFlaggedWhenStrict) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kNotify, 0, 0, 0, 0, 0.05),
      rec(Stage::kPull, 0, 0, 0, 0, 0.02),
  };
  EXPECT_TRUE(lifecycle_violations(records, /*strict=*/false).empty());
  EXPECT_EQ(lifecycle_violations(records, /*strict=*/true).size(), 1u);
}

TEST(LoadLifecycleCsv, MissingFileThrows) {
  EXPECT_THROW(load_lifecycle_csv("/nonexistent/lifecycle.csv"),
               std::runtime_error);
}

TEST(LoadLifecycleCsv, MalformedRowThrows) {
  const std::string path =
      ::testing::TempDir() + "/obs_analysis_test_malformed.csv";
  {
    std::ofstream out(path);
    out << "stage,worker,slice,layer,iteration,priority,bytes,t\n";
    out << "send,0,1\n";  // 3 fields instead of 8
  }
  EXPECT_THROW(load_lifecycle_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FormatReport, ContainsTables) {
  const std::vector<LifecycleRecord> records = {
      rec(Stage::kGradReady, 0, 0, 0, 0, 0.0),
      rec(Stage::kEnqueue, 0, 0, 0, 0, 0.01),
      rec(Stage::kSend, 0, 0, 0, 0, 0.02),
      rec(Stage::kParamReady, 0, 0, 0, 0, 0.1),
  };
  const std::string text = format_report(analyze(records));
  EXPECT_NE(text.find("lifecycle records: 4"), std::string::npos);
  EXPECT_NE(text.find("completed round trips: 1"), std::string::npos);
  EXPECT_NE(text.find("Per-priority latency breakdown"), std::string::npos);
  EXPECT_NE(text.find("Priority inversions: 0"), std::string::npos);
  EXPECT_NE(text.find("Send-queue depth"), std::string::npos);
}

TEST(Analyze, RackAggregationKeepsMemberSlicePriorities) {
  // Rack aggregation folds member pushes into one combined kRackPush per
  // rack; the per-priority breakdown must still attribute each member
  // slice's wire/queue time to that slice's own priority, not collapse the
  // whole rack onto the combined message's priority.
  model::Workload workload;
  workload.model = model::toy_uniform(4, 120'000);
  workload.batch_per_worker = 4;
  workload.iter_compute_time = 0.020;
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = core::SyncMethod::kP3;
  cfg.bandwidth = gbps(2.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.max_sim_time = 60.0;
  cfg.topology.racks = {{0, 1}, {2, 3}};
  cfg.topology.oversubscription = 2.0;
  cfg.rack_aggregation = true;

  ps::Cluster cluster(workload, cfg);
  Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(1, 3);

  const Report report = analyze(tracer.lifecycle_records());
  EXPECT_GT(report.round_trips, 0);
  // The toy model has 4 layers, so P3 slicing yields at least 4 distinct
  // priority classes; every class must complete round trips of its own.
  std::set<std::int32_t> priorities;
  int classes_with_wire_time = 0;
  for (const StageBreakdown& b : report.per_priority) {
    EXPECT_GT(b.round_trips, 0);
    priorities.insert(b.priority);
    if (b.mean_wire_s > 0.0) ++classes_with_wire_time;
  }
  EXPECT_GE(priorities.size(), 4u);
  // Wire time spread over several classes is the proof the combined push
  // did not swallow the members' attribution.
  EXPECT_GE(classes_with_wire_time, 2);
}

}  // namespace
}  // namespace p3::obs
