// DSSP end to end: the adaptive staleness gate lets fast workers run ahead
// within the bound, and PROTOCOL.md invariant 13 holds under every chaos
// plane — a dead or fenced straggler never wedges the fleet, rejoiners
// enter at the rejoin_slack floor, drained nodes hand their clock off, and
// the ground-truth audits (`staleness_violations`, `gate_wedge_ticks`)
// stay zero throughout. Same-seed DSSP chaos runs are bit-identical at any
// runner thread count.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "model/zoo.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload(int layers = 4, std::int64_t params = 120'000,
                               TimeS compute = 0.020) {
  model::Workload w;
  w.model = model::toy_uniform(layers, params);
  w.batch_per_worker = 4;
  w.iter_compute_time = compute;
  return w;
}

ClusterConfig dssp_config(int workers = 4) {
  ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = SyncMethod::kDSSP;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;  // fail fast if the gate wedges
  return cfg;
}

/// Invariant-13 audits plus exactly-once convergence for the listed
/// workers: no gate release ever outran the true min-clock floor, no audit
/// tick found the fleet wedged, and every slice applied each round once.
void expect_dssp_clean(const Cluster& cluster, const RunResult& result,
                       int layers, std::int64_t iterations,
                       const std::vector<int>& live_workers) {
  EXPECT_EQ(result.staleness_violations, 0);
  EXPECT_EQ(result.gate_wedge_ticks, 0);
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w : live_workers) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault-free plane: DSSP arms the membership plane on its own, completes,
// and the audits are clean.
// ---------------------------------------------------------------------------

TEST(Dssp, FaultFreeRunCompletesWithCleanAudits) {
  ClusterConfig cfg = dssp_config();
  Cluster cluster(small_workload(), cfg);
  EXPECT_TRUE(cluster.dssp_armed());
  EXPECT_TRUE(cluster.membership_armed());  // gate liveness needs views
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2, 3});
  EXPECT_GT(result.heartbeats_sent, 0);
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

TEST(Dssp, OtherMethodsStayDisarmed) {
  ClusterConfig cfg = dssp_config();
  cfg.method = SyncMethod::kP3;
  cfg.replication = 1;
  cfg.staleness.s_max = 7;  // ignored by non-DSSP methods
  Cluster cluster(small_workload(), cfg);
  EXPECT_FALSE(cluster.dssp_armed());
  const auto result = cluster.run(1, 3);
  cluster.drain();
  EXPECT_EQ(result.dssp_gate_blocks, 0);
  EXPECT_EQ(result.staleness_violations, 0);
  EXPECT_EQ(result.gate_wedge_ticks, 0);
  EXPECT_EQ(result.final_staleness_bound, 0);
}

// ---------------------------------------------------------------------------
// Straggler plane: a degraded-but-live worker lags its clock (its
// heartbeats still flow, so it stays in the eligible set and holds the
// floor), fast workers run ahead until the gate blocks them at the bound,
// and nothing is lost. A NIC *freeze* long enough to trip suspicion is the
// dead-straggler plane instead — that one must NOT hold the floor (see
// DeadStragglerNeverWedgesFleet).
// ---------------------------------------------------------------------------

TEST(Dssp, StragglerBlocksGateWithinBound) {
  ClusterConfig cfg = dssp_config();
  cfg.staleness.fixed_s = 1;  // tight static bound: the gate must engage
  net::Degradation deg;       // slow enough to lag, alive enough to count
  deg.node = 3;
  deg.start = 0.0;
  deg.end = 10.0;
  deg.bandwidth_factor = 0.15;
  deg.extra_latency = us(200);
  cfg.faults.degradations.push_back(deg);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2, 3});
  // The crawling straggler forced fast workers onto the gate at least once.
  EXPECT_GT(result.dssp_gate_blocks, 0);
  EXPECT_GT(result.mean_gate_wait, 0.0);
  EXPECT_EQ(result.final_staleness_bound, 1);  // pinned
  EXPECT_EQ(result.staleness_raises, 0);
}

TEST(Dssp, AdaptiveControllerRaisesBoundUnderStragglers) {
  ClusterConfig cfg = dssp_config();
  cfg.staleness.s_min = 0;
  cfg.staleness.s_max = 3;
  cfg.staleness.window = 4;
  cfg.compute_jitter = 0.3;
  net::Degradation deg;  // persistent live straggler: blocked windows pile up
  deg.node = 3;
  deg.start = 0.0;
  deg.end = 10.0;
  deg.bandwidth_factor = 0.15;
  deg.extra_latency = us(200);
  cfg.faults.degradations.push_back(deg);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 10;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2, 3});
  // Blocked windows must have widened the bound at least once, and the
  // time-weighted mean records the cost.
  EXPECT_GT(result.staleness_raises, 0);
  EXPECT_GT(result.mean_staleness_bound, 0.0);
  EXPECT_LE(result.final_staleness_bound, cfg.staleness.s_max);
  EXPECT_GE(result.final_staleness_bound, cfg.staleness.s_min);
}

// ---------------------------------------------------------------------------
// Crash plane: a permanently dead straggler leaves the eligible set once
// suspicion fires — the fleet must keep moving (invariant 13), and a
// crash+restart worker rejoins at the slack floor without tripping the
// violation audit.
// ---------------------------------------------------------------------------

TEST(Dssp, DeadStragglerNeverWedgesFleet) {
  ClusterConfig cfg = dssp_config();
  net::NodeCrash crash;
  crash.node = 3;  // colocated worker+server, never returns
  crash.at = 0.05;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.crashes, 1);
  EXPECT_GE(result.failovers, 1);
  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2});
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(Dssp, CrashedWorkerRejoinsAtSlackFloor) {
  ClusterConfig cfg = dssp_config();
  cfg.dedicated_servers = true;
  cfg.replication = 1;
  net::NodeCrash crash;
  crash.node = 2;
  crash.at = 0.05;
  crash.restart_after = 0.04;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.worker_rejoins, 1);
  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Partition plane: a minority-fenced straggler is excluded from the
// min-clock while cut off; on heal its parked contributions drain and the
// audits stay clean.
// ---------------------------------------------------------------------------

TEST(Dssp, MinorityFencedStragglerExcludedUntilHeal) {
  ClusterConfig cfg = dssp_config(5);  // odd: {0,1} strict minority
  cfg.faults.lease_duration = 0.1;
  net::NetPartition cut;
  cut.side_a = {0, 1};
  cut.side_b = {2, 3, 4};
  cut.start = 0.05;
  cut.heal = 0.4;
  cfg.faults.partitions.push_back(cut);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  expect_dssp_clean(cluster, result, 4, iterations, {0, 1, 2, 3, 4});
  EXPECT_EQ(result.cross_partition_deliveries, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Elastic plane: a joiner enters the clock roster mid-run, a draining node
// hands its clock off with the goodbye handshake, and neither admission
// nor retirement wedges the gate.
// ---------------------------------------------------------------------------

TEST(Dssp, JoinAndDrainKeepGateLive) {
  ClusterConfig cfg = dssp_config();
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.leaves.push_back({1, 0.15});

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.joins, 1);
  EXPECT_GE(result.drains_completed, 1);
  EXPECT_EQ(result.staleness_violations, 0);
  EXPECT_EQ(result.gate_wedge_ticks, 0);
  // The retired node's clock left the roster; survivors and the joiner
  // all reached the target.
  for (int w : {0, 2, 3, 4}) {
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Determinism: DSSP chaos points are bit-identical whether the sweep runs
// on 1, 2 or 4 runner threads.
// ---------------------------------------------------------------------------

TEST(Dssp, ChaosSweepBitIdenticalAcrossRunnerThreads) {
  enum class Plane { kStraggler, kCrash, kElastic };
  const auto run_point = [](Plane plane, int fixed_s) {
    ClusterConfig cfg = dssp_config();
    cfg.staleness.fixed_s = fixed_s;
    cfg.compute_jitter = 0.2;
    switch (plane) {
      case Plane::kStraggler: {
        net::NodePause pause;
        pause.node = 2;
        pause.start = 0.04;
        pause.duration = 0.2;
        cfg.faults.pauses.push_back(pause);
        break;
      }
      case Plane::kCrash: {
        net::NodeCrash crash;
        crash.node = 3;
        crash.at = 0.05;
        crash.restart_after = 0.04;
        cfg.faults.crashes.push_back(crash);
        break;
      }
      case Plane::kElastic:
        cfg.faults.joins.push_back({4, 0.05});
        break;
    }
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 5);
    cluster.drain();
    return r;
  };
  const std::vector<std::pair<Plane, int>> grid = {
      {Plane::kStraggler, -1},
      {Plane::kStraggler, 2},
      {Plane::kCrash, -1},
      {Plane::kElastic, 1},
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& [plane, s] : grid) {
      jobs.push_back([=] { return run_point(plane, s); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "point " << i;
      EXPECT_EQ(a.goodput_bytes, b.goodput_bytes) << "point " << i;
      EXPECT_EQ(a.dssp_gate_blocks, b.dssp_gate_blocks) << "point " << i;
      EXPECT_EQ(a.staleness_raises, b.staleness_raises) << "point " << i;
      EXPECT_EQ(a.staleness_decays, b.staleness_decays) << "point " << i;
      EXPECT_EQ(a.final_staleness_bound, b.final_staleness_bound)
          << "point " << i;
      EXPECT_EQ(a.mean_gate_wait, b.mean_gate_wait) << "point " << i;
      EXPECT_EQ(a.staleness_violations, 0) << "point " << i;
      EXPECT_EQ(a.gate_wedge_ticks, 0) << "point " << i;
    }
  }
}

}  // namespace
}  // namespace p3::ps
