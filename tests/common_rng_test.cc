#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace p3 {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformLoHi) {
  Rng rng(3);
  for (int i = 0; i < 1'000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalMeanStddev) {
  Rng rng(5);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child stream should not track the parent's subsequent output.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace p3
