#include "train/dgc.h"

#include <gtest/gtest.h>

#include <cmath>

namespace p3::train {
namespace {

std::vector<Param> make_params(std::size_t n) {
  std::vector<Param> params(1);
  params[0].value = Tensor(1, n);
  params[0].grad = Tensor(1, n);
  return params;
}

TEST(Dgc, SelectsTopKByMagnitude) {
  auto params = make_params(10);
  for (std::size_t i = 0; i < 10; ++i) {
    params[0].grad.raw()[i] = static_cast<float>(i) - 4.5f;  // |.| max at ends
  }
  DgcConfig cfg;
  cfg.sparsity = 0.8;  // keep 2 of 10
  cfg.momentum = 0.0;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  const auto sparse = comp.compress(params, 10);
  ASSERT_EQ(sparse.size(), 1u);
  ASSERT_EQ(sparse[0].indices.size(), 2u);
  EXPECT_EQ(sparse[0].indices[0], 0u);  // -4.5
  EXPECT_EQ(sparse[0].indices[1], 9u);  // +4.5
}

TEST(Dgc, AlwaysSendsAtLeastOneEntry) {
  auto params = make_params(5);
  params[0].grad.fill(0.1f);
  DgcConfig cfg;
  cfg.sparsity = 0.999;  // 0.005 of 5 -> rounds to >= 1
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  const auto sparse = comp.compress(params, 10);
  EXPECT_EQ(sparse[0].indices.size(), 1u);
}

TEST(Dgc, ResidualAccumulatesUnsentMass) {
  auto params = make_params(4);
  params[0].grad.raw() = {1.0f, 0.1f, 0.1f, 0.1f};
  DgcConfig cfg;
  cfg.sparsity = 0.75;  // keep 1
  cfg.momentum = 0.0;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  const auto sparse = comp.compress(params, 10);
  EXPECT_EQ(sparse[0].indices[0], 0u);
  // The three 0.1 entries stay in the residual.
  EXPECT_NEAR(comp.residual_norm(), std::sqrt(3 * 0.01), 1e-6);
}

TEST(Dgc, ResidualEventuallyTransmitted) {
  // Error feedback: a small persistent gradient must eventually be sent.
  auto params = make_params(4);
  DgcConfig cfg;
  cfg.sparsity = 0.75;
  cfg.momentum = 0.0;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  bool index3_sent = false;
  for (int it = 0; it < 20 && !index3_sent; ++it) {
    params[0].grad.raw() = {1.0f, 0.0f, 0.0f, 0.1f};
    const auto sparse = comp.compress(params, 10);
    for (auto idx : sparse[0].indices) {
      if (idx == 3) index3_sent = true;
    }
  }
  EXPECT_TRUE(index3_sent);
}

TEST(Dgc, NoGradientLossWithoutSparsity) {
  // sparsity 0 transmits everything: residual must stay empty.
  auto params = make_params(8);
  DgcConfig cfg;
  cfg.sparsity = 0.0;
  cfg.momentum = 0.0;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  params[0].grad.raw() = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto sparse = comp.compress(params, 10);
  EXPECT_EQ(sparse[0].indices.size(), 8u);
  EXPECT_NEAR(comp.residual_norm(), 0.0, 1e-9);
}

TEST(Dgc, MomentumCorrectionCompoundsUnsentEntries) {
  // An entry held back by sparsification accumulates *velocity*, not just
  // raw gradient: after two rounds of grad 0.1 with momentum 0.5 the
  // residual holds v1 + v2 = 0.1 + 0.15 = 0.25 (momentum correction),
  // whereas plain accumulation would hold 0.2.
  auto params = make_params(2);
  DgcConfig cfg;
  cfg.sparsity = 0.5;  // keep 1 of 2: index 0 (large) wins every round
  cfg.momentum = 0.5;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  for (int i = 0; i < 2; ++i) {
    params[0].grad.raw() = {1.0f, 0.1f};
    comp.compress(params, 10);
  }
  EXPECT_NEAR(comp.residual_norm(), 0.25, 1e-6);
}

TEST(Dgc, MomentumFactorMaskingClearsSentVelocity) {
  auto params = make_params(1);
  DgcConfig cfg;
  cfg.sparsity = 0.0;
  cfg.momentum = 0.9;
  cfg.warmup_epochs = 0;
  DgcCompressor comp(params, cfg);
  for (int i = 0; i < 5; ++i) {
    params[0].grad.fill(1.0f);
    const auto s = comp.compress(params, 10);
    // With masking every round, velocity never compounds: always exactly 1.
    EXPECT_FLOAT_EQ(s[0].values[0], 1.0f);
  }
}

TEST(Dgc, WarmupRampsSparsity) {
  auto params = make_params(1000);
  DgcConfig cfg;
  cfg.sparsity = 0.999;
  cfg.warmup_epochs = 4;
  DgcCompressor comp(params, cfg);
  EXPECT_LT(comp.sparsity_at_epoch(0), 0.999);
  EXPECT_GE(comp.sparsity_at_epoch(0), 0.75);
  EXPECT_LT(comp.sparsity_at_epoch(0), comp.sparsity_at_epoch(2));
  EXPECT_DOUBLE_EQ(comp.sparsity_at_epoch(4), 0.999);
  EXPECT_DOUBLE_EQ(comp.sparsity_at_epoch(100), 0.999);
}

TEST(Dgc, AccumulateRebuildsDense) {
  std::vector<SparseGrad> sparse(1);
  sparse[0].indices = {1, 3};
  sparse[0].values = {2.0f, -1.0f};
  std::vector<Tensor> dense{Tensor(1, 4)};
  DgcCompressor::accumulate(sparse, dense);
  DgcCompressor::accumulate(sparse, dense);  // accumulates, not overwrites
  EXPECT_FLOAT_EQ(dense[0].raw()[1], 4.0f);
  EXPECT_FLOAT_EQ(dense[0].raw()[3], -2.0f);
  EXPECT_FLOAT_EQ(dense[0].raw()[0], 0.0f);
}

TEST(Dgc, AccumulateValidatesInput) {
  std::vector<SparseGrad> sparse(1);
  sparse[0].indices = {9};
  sparse[0].values = {1.0f};
  std::vector<Tensor> dense{Tensor(1, 4)};
  EXPECT_THROW(DgcCompressor::accumulate(sparse, dense), std::out_of_range);
  sparse[0].indices = {1, 2};
  EXPECT_THROW(DgcCompressor::accumulate(sparse, dense),
               std::invalid_argument);
}

TEST(Dgc, InvalidSparsityThrows) {
  auto params = make_params(4);
  DgcConfig cfg;
  cfg.sparsity = 1.0;
  EXPECT_THROW(DgcCompressor(params, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace p3::train
