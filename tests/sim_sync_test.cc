#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

namespace p3::sim {
namespace {

TEST(Event, WaitAfterSetIsImmediate) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  bool resumed = false;
  sim.spawn([](Event& e, bool& flag) -> Task {
    co_await e.wait();
    flag = true;
  }(ev, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(Event, BroadcastsToAllWaiters) {
  Simulator sim;
  Event ev(sim);
  int resumed = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Event& e, int& count) -> Task {
      co_await e.wait();
      ++count;
    }(ev, resumed));
  }
  sim.run();
  EXPECT_EQ(resumed, 0);
  ev.set();
  sim.run();
  EXPECT_EQ(resumed, 5);
}

TEST(Event, ResetReArms) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
  bool resumed = false;
  sim.spawn([](Event& e, bool& flag) -> Task {
    co_await e.wait();
    flag = true;
  }(ev, resumed));
  sim.run();
  EXPECT_FALSE(resumed);
  ev.set();
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(Semaphore, AcquireAvailable) {
  Simulator sim;
  Semaphore s(sim, 2);
  int acquired = 0;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Semaphore& sem, int& count) -> Task {
      co_await sem.acquire();
      ++count;
    }(s, acquired));
  }
  sim.run();
  EXPECT_EQ(acquired, 2);
  s.release();
  sim.run();
  EXPECT_EQ(acquired, 3);
}

TEST(Semaphore, MutualExclusion) {
  Simulator sim;
  Semaphore mutex(sim, 1);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulator& s, Semaphore& m, int& in, int& max_in) -> Task {
      co_await m.acquire();
      ++in;
      max_in = std::max(max_in, in);
      co_await s.sleep(1.0);
      --in;
      m.release();
    }(sim, mutex, inside, max_inside));
  }
  sim.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Barrier, ReleasesWhenAllArrive) {
  Simulator sim;
  Barrier b(sim, 3);
  std::vector<TimeS> release_times;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, Barrier& bar, std::vector<TimeS>& out,
                 int id) -> Task {
      co_await s.sleep(static_cast<double>(id));  // staggered arrival
      co_await bar.arrive_and_wait();
      out.push_back(s.now());
    }(sim, b, release_times, i));
  }
  sim.run();
  ASSERT_EQ(release_times.size(), 3u);
  for (TimeS t : release_times) EXPECT_DOUBLE_EQ(t, 2.0);
  EXPECT_EQ(b.generation(), 1u);
}

TEST(Barrier, ReusableAcrossGenerations) {
  Simulator sim;
  Barrier b(sim, 2);
  std::vector<TimeS> times;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulator& s, Barrier& bar, std::vector<TimeS>& out,
                 int id) -> Task {
      for (int round = 0; round < 3; ++round) {
        co_await s.sleep(id == 0 ? 1.0 : 2.0);
        co_await bar.arrive_and_wait();
        if (id == 0) out.push_back(s.now());
      }
    }(sim, b, times, i));
  }
  sim.run();
  EXPECT_EQ(times, (std::vector<TimeS>{2.0, 4.0, 6.0}));
  EXPECT_EQ(b.generation(), 3u);
}

TEST(VersionGate, ImmediateWhenAlreadyReached) {
  Simulator sim;
  VersionGate g(sim);
  g.advance_to(5);
  bool resumed = false;
  sim.spawn([](VersionGate& gate, bool& flag) -> Task {
    co_await gate.wait_for(3);
    flag = true;
  }(g, resumed));
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(VersionGate, WakesInThresholdOrder) {
  Simulator sim;
  VersionGate g(sim);
  std::vector<int> woken;
  for (int v : {3, 1, 2}) {
    sim.spawn([](VersionGate& gate, std::vector<int>& out, int version)
                  -> Task {
      co_await gate.wait_for(version);
      out.push_back(version);
    }(g, woken, v));
  }
  sim.run();
  EXPECT_TRUE(woken.empty());
  g.advance_to(1);
  sim.run();
  EXPECT_EQ(woken, (std::vector<int>{1}));
  g.advance_to(3);
  sim.run();
  ASSERT_EQ(woken.size(), 3u);
  EXPECT_EQ(woken[1], 3);  // registration order among those released together
  EXPECT_EQ(woken[2], 2);
}

TEST(VersionGate, AdvanceIsMonotonic) {
  Simulator sim;
  VersionGate g(sim);
  g.advance_to(10);
  g.advance_to(5);  // ignored
  EXPECT_EQ(g.version(), 10);
  g.increment();
  EXPECT_EQ(g.version(), 11);
}

}  // namespace
}  // namespace p3::sim
