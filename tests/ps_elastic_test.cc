// Elastic scale-out and lease-based leadership end to end: a node admitted
// mid-run receives migrated shard groups and its worker enters aggregation
// (exactly-once, ledger-verified) for every sync method; lease-mode
// failover never opens a dual-primary window (and provably closes the one
// suspicion-timeout failover allows); incarnation supersession is
// immediate; and elastic sweeps are bit-identical at any runner thread
// count.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "model/zoo.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ClusterConfig elastic_config(SyncMethod method) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;  // fail fast if admission or migration wedges
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

/// Exactly-once check over the expanded cluster: every slice's version
/// vector equals the iteration count (a double-applied re-push or migrated
/// duplicate would overshoot), and every listed worker saw every layer.
void expect_converged(const Cluster& cluster, int layers,
                      std::int64_t iterations,
                      const std::vector<int>& workers) {
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w : workers) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: a server+worker node joins mid-run, the deterministic
// planner hands it shard groups, and every sync method completes with
// ledger-verified exactly-once aggregation — under leases, with zero
// dual-primary windows.
// ---------------------------------------------------------------------------

class ElasticJoin : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(ElasticJoin, JoinMigratesShardsAndConverges) {
  ClusterConfig cfg = elastic_config(GetParam());
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.lease_duration = 0.1;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.leases_armed());
  EXPECT_EQ(result.joins, 1);
  EXPECT_EQ(result.crashes, 0);
  // Joiner 4 (k = 0) takes max(1, 4/5) = 1 contiguous group starting at 0.
  EXPECT_EQ(result.migrations, 1);
  // P3-style slicing round-robins slices over servers, so group 0 always
  // owns state; kvstore placement may leave it empty (the handover is then
  // a pure leadership transfer).
  const bool sliced = GetParam() == SyncMethod::kSlicingOnly ||
                      GetParam() == SyncMethod::kP3;
  if (sliced) EXPECT_GT(result.migrated_bytes, 0);
  EXPECT_GT(result.lease_renewals, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  // Every view converged on the joiner leading group 0.
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(cluster.leadership_view(n).primary(0), 4) << "observer " << n;
    EXPECT_GE(cluster.leadership_view(n).epoch(0), 1) << "observer " << n;
  }
  // The joiner's worker reached the same target as the base set.
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3, 4});
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ElasticJoin,
                         ::testing::ValuesIn(kAllMethods));

// ---------------------------------------------------------------------------
// Joins work without leases too (legacy suspicion-timeout failover): the
// membership plane arms, the migration runs, no lease state is consumed.
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, JoinWithoutLeasesMigratesAndConverges) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.joins.push_back({4, 0.05});

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.membership_armed());
  EXPECT_FALSE(cluster.leases_armed());
  EXPECT_EQ(result.joins, 1);
  EXPECT_EQ(result.migrations, 1);
  EXPECT_EQ(result.lease_renewals, 0);
  EXPECT_EQ(result.lease_expiries, 0);
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3, 4});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Two joiners: the planner assigns disjoint contiguous shares and both
// workers enter aggregation.
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, TwoJoinersTakeDisjointShares) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.joins.push_back({5, 0.12});
  cfg.faults.lease_duration = 0.1;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.joins, 2);
  EXPECT_EQ(result.migrations, 2);  // one group each (4 takes 0, 5 takes 1)
  EXPECT_EQ(result.dual_primary_windows, 0);
  for (int n = 0; n < 6; ++n) {
    EXPECT_EQ(cluster.leadership_view(n).primary(0), 4) << "observer " << n;
    EXPECT_EQ(cluster.leadership_view(n).primary(1), 5) << "observer " << n;
  }
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// The headline lease guarantee, by contrast. A GC-style NIC pause longer
// than the suspicion timeout:
//   - under suspicion-only failover, a backup seizes the group while the
//     paused primary still believes it leads — a measured dual-primary
//     window;
//   - under leases, the successor must wait out the lease, the pause ends
//     first, and no window ever opens.
// ---------------------------------------------------------------------------

TEST(LeaseLeadership, PauseBeyondSuspicionOpensDualWindowWithoutLeases) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.pauses.push_back({1, 0.05, 0.06});  // 60 ms >> 25 ms suspicion
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();
  // The false failover happened, and ground truth saw both primaries act.
  EXPECT_GE(result.failovers, 1);
  EXPECT_GT(result.dual_primary_windows, 0);
  // The protocol still converges (version dedup absorbs the stale payloads).
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(LeaseLeadership, LeaseOutlivesThePauseSoNoFailoverAndNoDualWindow) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.pauses.push_back({1, 0.05, 0.06});  // same pause as above
  cfg.faults.lease_duration = 0.3;  // lease expiry lands after the release
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();
  EXPECT_TRUE(cluster.leases_armed());
  EXPECT_EQ(result.failovers, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Leases still fail over — after expiry. A permanent crash under leases
// completes via the normal takeover path with zero dual windows.
// ---------------------------------------------------------------------------

TEST(LeaseLeadership, PermanentCrashFailsOverAfterLeaseExpiry) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.crashes.push_back({3, 0.05, -1.0});
  cfg.faults.lease_duration = 0.1;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();
  EXPECT_EQ(result.crashes, 1);
  EXPECT_GE(result.failovers, 1);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, {0, 1, 2});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Satellite fix regression: a restart within one heartbeat interval beacons
// a higher incarnation while every observer still believes the old process
// alive. Supersession must be immediate — counted, leases voided — and the
// run must converge without waiting out a stale lease on a ghost.
// ---------------------------------------------------------------------------

TEST(LeaseLeadership, RestartWithinOneHeartbeatSupersedesImmediately) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.checkpoint_period = 0.02;
  cfg.faults.crashes.push_back({2, 0.05, 0.002});  // back in 2 ms < 5 ms beat
  cfg.faults.lease_duration = 0.1;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();
  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.restarts, 1);
  // The new incarnation's first beacons landed before any observer's
  // silence detector noticed the death.
  EXPECT_GE(result.supersessions, 1);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// A joiner can later crash: its groups fail back over to the home-ring
// backup (the donor is the joiner-led chain's first backup).
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, JoinerCrashFailsBackToTheDonorChain) {
  ClusterConfig cfg = elastic_config(SyncMethod::kBaseline);
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.crashes.push_back({4, 0.12, -1.0});  // legal: crash after join
  cfg.faults.lease_duration = 0.1;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();
  EXPECT_EQ(result.joins, 1);
  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.dual_primary_windows, 0);
  // Whether the crash landed before or after the handover, group 0 must end
  // on a live base server.
  for (int n = 0; n < 4; ++n) {
    EXPECT_LT(cluster.leadership_view(n).primary(0), 4) << "observer " << n;
  }
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Config rejection at the cluster boundary.
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, DedicatedServerDeploymentsRejectJoins) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.dedicated_servers = true;
  cfg.faults.joins.push_back({8, 0.05});
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

TEST(LeaseLeadership, LeaseNotExceedingHeartbeatPeriodRejected) {
  ClusterConfig cfg = elastic_config(SyncMethod::kP3);
  cfg.faults.lease_duration = cfg.heartbeat_period;  // unrenewable
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Staggered joins: a second joiner arrives while the first admission is
// still in flight (overlapping windows — 5 ms apart, well inside the
// join/migration handshake). Both must converge with disjoint shares, and
// the interleaving must be bit-identical at any runner thread count.
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, StaggeredJoinersOnOverlappingWindowsConverge) {
  const auto run_once = [] {
    ClusterConfig cfg = elastic_config(SyncMethod::kP3);
    cfg.faults.joins.push_back({4, 0.05});
    cfg.faults.joins.push_back({5, 0.055});  // mid-admission of node 4
    cfg.faults.lease_duration = 0.1;
    return cfg;
  };
  Cluster cluster(small_workload(), run_once());
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.joins, 2);
  EXPECT_EQ(result.migrations, 2);
  EXPECT_EQ(result.dual_primary_windows, 0);
  for (int n = 0; n < 6; ++n) {
    EXPECT_EQ(cluster.leadership_view(n).primary(0), 4) << "observer " << n;
    EXPECT_EQ(cluster.leadership_view(n).primary(1), 5) << "observer " << n;
  }
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(cluster.simulator().idle());

  // The same staggered admission is bit-identical at 1, 2 and 4 threads.
  const auto run_point = [&run_once] {
    Cluster c(small_workload(), run_once());
    auto r = c.run(1, 4);
    c.drain();
    return r;
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs(2, run_point);
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < by_threads[t].size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "job " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "job " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "job " << i;
      EXPECT_EQ(a.joins, b.joins) << "job " << i;
      EXPECT_EQ(a.migrations, b.migrations) << "job " << i;
      EXPECT_EQ(a.migrated_bytes, b.migrated_bytes) << "job " << i;
      EXPECT_EQ(a.lease_renewals, b.lease_renewals) << "job " << i;
      EXPECT_EQ(a.dual_primary_windows, b.dual_primary_windows)
          << "job " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: the same seeded elastic sweep (joins + crashes + leases) is
// bit-identical at 1, 2 and 4 runner threads — three full executions, so
// same-seed rerun identity is covered by the same comparison.
// ---------------------------------------------------------------------------

TEST(ElasticScaleOut, ElasticSweepBitIdenticalAcrossRunnerThreads) {
  struct Point {
    SyncMethod method;
    bool crash;
    bool lease;
  };
  const std::vector<Point> grid = {
      {SyncMethod::kP3, false, true},
      {SyncMethod::kBaseline, true, true},
      {SyncMethod::kTensorFlowStyle, false, false},
      {SyncMethod::kPoseidonWFBP, false, true},
  };
  const auto run_point = [](const Point& p) {
    ClusterConfig cfg = elastic_config(p.method);
    cfg.checkpoint_period = 0.02;
    cfg.faults.joins.push_back({4, 0.05});
    if (p.crash) cfg.faults.crashes.push_back({1, 0.3, 0.05});
    if (p.lease) cfg.faults.lease_duration = 0.1;
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 4);
    cluster.drain();
    return r;
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& p : grid) {
      jobs.push_back([=] { return run_point(p); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "point " << i;
      EXPECT_EQ(a.goodput_bytes, b.goodput_bytes) << "point " << i;
      EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent) << "point " << i;
      EXPECT_EQ(a.joins, b.joins) << "point " << i;
      EXPECT_EQ(a.migrations, b.migrations) << "point " << i;
      EXPECT_EQ(a.migrated_bytes, b.migrated_bytes) << "point " << i;
      EXPECT_EQ(a.lease_renewals, b.lease_renewals) << "point " << i;
      EXPECT_EQ(a.lease_expiries, b.lease_expiries) << "point " << i;
      EXPECT_EQ(a.failovers, b.failovers) << "point " << i;
      EXPECT_EQ(a.supersessions, b.supersessions) << "point " << i;
      EXPECT_EQ(a.dual_primary_windows, b.dual_primary_windows)
          << "point " << i;
    }
  }
  // And the lease rows of the reference execution honored the invariant.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].lease) {
      EXPECT_EQ(by_threads[0][i].dual_primary_windows, 0) << "point " << i;
    }
  }
}

}  // namespace
}  // namespace p3::ps
