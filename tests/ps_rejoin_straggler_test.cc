// Bounded-staleness rejoin composed with the straggler plane: a worker
// that crashes and restarts re-enters aggregation under the rejoin_slack
// window while its NIC is simultaneously frozen (NodePause) and degraded
// (bandwidth dip + extra latency). Until now the rejoin_slack rule was
// exercised only under clean restarts; these tests pin down that a
// straggling rejoiner still converges exactly-once and — under DSSP — the
// staleness-gate audits stay clean while the rejoiner catches up.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <vector>

#include "model/zoo.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

/// Crash+restart of worker 2 with its recovery window straddled by a NIC
/// freeze and a bandwidth/latency degradation — the rejoin handshake and
/// the catch-up pulls both run through a struggling NIC.
ClusterConfig straggling_rejoin_config(SyncMethod method,
                                       std::int64_t rejoin_slack) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.dedicated_servers = true;  // crash a pure worker node
  cfg.replication = 1;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.rejoin_slack = rejoin_slack;
  cfg.max_sim_time = 60.0;

  net::NodeCrash crash;
  crash.node = 2;
  crash.at = 0.05;
  crash.restart_after = 0.04;  // back at 0.09
  cfg.faults.crashes.push_back(crash);

  net::NodePause pause;  // NIC frozen right as the rejoin handshake starts
  pause.node = 2;
  pause.start = 0.09;
  pause.duration = 0.05;
  cfg.faults.pauses.push_back(pause);

  net::Degradation deg;  // and the catch-up window runs on a crippled NIC
  deg.node = 2;
  deg.start = 0.14;
  deg.end = 0.40;
  deg.bandwidth_factor = 0.25;
  deg.extra_latency = us(200);
  cfg.faults.degradations.push_back(deg);
  return cfg;
}

void expect_converged(const Cluster& cluster, std::int64_t iterations) {
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w = 0; w < 4; ++w) {
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

class StragglingRejoin : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(StragglingRejoin, RejoinUnderPauseAndDegradationConverges) {
  ClusterConfig cfg = straggling_rejoin_config(GetParam(), /*rejoin_slack=*/1);
  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.crashes, 1);
  EXPECT_EQ(result.restarts, 1);
  EXPECT_EQ(result.worker_rejoins, 1);
  EXPECT_GT(result.max_rejoin_lag, 0.0);
  expect_converged(cluster, iterations);
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(SyncMethods, StragglingRejoin,
                         ::testing::Values(SyncMethod::kBaseline,
                                           SyncMethod::kP3,
                                           SyncMethod::kDSSP));

TEST(StragglingRejoin, WiderSlackStillExactlyOnce) {
  // A looser slack window admits the straggling rejoiner into aggregation
  // later; the ledger must still apply each of its rounds exactly once
  // (an overshoot would show as slice_version > iterations).
  ClusterConfig cfg =
      straggling_rejoin_config(SyncMethod::kP3, /*rejoin_slack=*/3);
  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.worker_rejoins, 1);
  expect_converged(cluster, iterations);
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(StragglingRejoin, DsspAuditsStayCleanWhileRejoinerCatchesUp) {
  // The DSSP-specific composition: the rejoiner re-enters the clock roster
  // below the released floor (the monotone floor narrows future advances
  // rather than retracting releases), so the violation and wedge audits
  // must both stay zero even though its NIC is frozen, then degraded,
  // through the whole catch-up.
  ClusterConfig cfg =
      straggling_rejoin_config(SyncMethod::kDSSP, /*rejoin_slack=*/2);
  cfg.staleness.s_max = 3;
  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.worker_rejoins, 1);
  EXPECT_EQ(result.staleness_violations, 0);
  EXPECT_EQ(result.gate_wedge_ticks, 0);
  expect_converged(cluster, iterations);
  EXPECT_TRUE(cluster.simulator().idle());
}

}  // namespace
}  // namespace p3::ps
