#include "model/compute.h"

#include <gtest/gtest.h>

#include "model/zoo.h"

namespace p3::model {
namespace {

TEST(ComputeProfile, TotalMatchesBudget) {
  const auto m = resnet50();
  const auto p = make_profile(m, 0.305);
  EXPECT_EQ(p.num_layers(), m.num_layers());
  EXPECT_NEAR(p.total(), 0.305, 1e-9);
}

TEST(ComputeProfile, ForwardBackwardRatio) {
  GpuModelConfig cfg;
  cfg.bwd_ratio = 2.0;
  cfg.layer_overhead = 0.0;
  const auto p = make_profile(toy_uniform(4, 100), 0.3, cfg);
  EXPECT_NEAR(p.total_fwd(), 0.1, 1e-12);
  EXPECT_NEAR(p.total_bwd(), 0.2, 1e-12);
}

TEST(ComputeProfile, ProportionalToFlops) {
  GpuModelConfig cfg;
  cfg.layer_overhead = 0.0;
  const auto m = toy_custom({1, 1, 1}, {1.0, 3.0, 1.0});
  const auto p = make_profile(m, 1.0, cfg);
  EXPECT_NEAR(p.fwd[1], 3.0 * p.fwd[0], 1e-12);
  EXPECT_NEAR(p.bwd[1], 3.0 * p.bwd[0], 1e-12);
}

TEST(ComputeProfile, OverheadFloorsEachLayer) {
  GpuModelConfig cfg;
  cfg.layer_overhead = us(25);
  const auto m = toy_custom({1, 1}, {0.0, 1.0});  // layer 0 has zero flops
  const auto p = make_profile(m, 0.01, cfg);
  EXPECT_GE(p.fwd[0], us(25));
  EXPECT_GE(p.bwd[0], us(25));
}

TEST(ComputeProfile, OverheadDominatedModelClamps) {
  GpuModelConfig cfg;
  cfg.layer_overhead = ms(1);
  // 100 layers * 2 passes * 1ms = 0.2s of overhead > 0.1s budget.
  const auto p = make_profile(toy_uniform(100, 1), 0.1, cfg);
  EXPECT_NEAR(p.total(), 0.2, 1e-9);  // clamped to overhead floor
}

TEST(ComputeProfile, InvalidArgumentsThrow) {
  EXPECT_THROW(make_profile(ModelSpec{}, 1.0), std::invalid_argument);
  EXPECT_THROW(make_profile(toy_uniform(2, 1), 0.0), std::invalid_argument);
}

TEST(Workloads, PlateauThroughputsMatchFigure7) {
  // Plateau = 4 workers * batch / iter_compute_time.
  const auto r = workload_resnet50();
  EXPECT_NEAR(4.0 * r.batch_per_worker / r.iter_compute_time, 105.0, 2.0);
  const auto i = workload_inception_v3();
  EXPECT_NEAR(4.0 * i.batch_per_worker / i.iter_compute_time, 70.0, 1.0);
  const auto v = workload_vgg19();
  EXPECT_NEAR(4.0 * v.batch_per_worker / v.iter_compute_time, 56.0, 1.0);
  const auto s = workload_sockeye();
  EXPECT_NEAR(4.0 * s.batch_per_worker / s.iter_compute_time, 160.0, 1.0);
}

TEST(Workloads, ModelsAttached) {
  EXPECT_EQ(workload_resnet50().model.name, "ResNet-50");
  EXPECT_EQ(workload_inception_v3().model.name, "InceptionV3");
  EXPECT_EQ(workload_vgg19().model.name, "VGG-19");
  EXPECT_EQ(workload_sockeye().model.name, "Sockeye");
}

}  // namespace
}  // namespace p3::model
