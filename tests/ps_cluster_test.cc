// Integration tests for the parameter-server cluster engine: protocol
// correctness invariants across every synchronization method, plus the
// qualitative performance relationships the paper's design arguments rely
// on. Property-style sweeps use TEST_P over (method, workers, bandwidth).
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <tuple>

#include "model/zoo.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload(int layers = 4, std::int64_t params = 120'000,
                               TimeS compute = 0.010) {
  model::Workload w;
  w.model = model::toy_uniform(layers, params);
  w.batch_per_worker = 4;
  w.iter_compute_time = compute;
  return w;
}

ClusterConfig small_config(SyncMethod method, int workers = 4,
                           double bandwidth_gbps = 1.0) {
  ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

// ---------------------------------------------------------------------------
// Protocol correctness invariants, swept over all methods x cluster sizes.
// ---------------------------------------------------------------------------

class ProtocolInvariants
    : public ::testing::TestWithParam<std::tuple<SyncMethod, int>> {};

TEST_P(ProtocolInvariants, EverySliceCompletesEveryRound) {
  const auto [method, workers] = GetParam();
  Cluster cluster(small_workload(), small_config(method, workers));
  const int iterations = 5;
  const auto result = cluster.run(2, iterations - 2);
  cluster.drain();

  // After draining, every slice must have completed exactly `iterations`
  // aggregation rounds (gradients from every worker aggregated once per
  // iteration, never lost, never double-counted).
  const auto& part = cluster.partition();
  for (std::int64_t s = 0; s < part.num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  EXPECT_EQ(cluster.rounds_completed(), part.num_slices() * iterations);
  EXPECT_GT(result.throughput, 0.0);
}

TEST_P(ProtocolInvariants, EveryWorkerReceivesEveryLayerEveryRound) {
  const auto [method, workers] = GetParam();
  Cluster cluster(small_workload(), small_config(method, workers));
  const int iterations = 4;
  cluster.run(0, iterations);
  cluster.drain();
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < 4; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

TEST_P(ProtocolInvariants, PushCountMatchesProtocol) {
  const auto [method, workers] = GetParam();
  Cluster cluster(small_workload(), small_config(method, workers));
  const int iterations = 3;
  cluster.run(0, iterations);
  cluster.drain();
  const auto& part = cluster.partition();
  // Fragments: slice payloads here (<=50k params = 200KB) are below the 4MB
  // fragment size, so pushes = slices * workers * iterations.
  EXPECT_EQ(cluster.pushes_sent(), part.num_slices() * workers * iterations);
}

TEST_P(ProtocolInvariants, AllTrafficDelivered) {
  const auto [method, workers] = GetParam();
  Cluster cluster(small_workload(), small_config(method, workers));
  cluster.run(0, 3);
  cluster.drain();
  EXPECT_EQ(cluster.network().messages_posted(),
            cluster.network().messages_delivered());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByWorkers, ProtocolInvariants,
    ::testing::Combine(::testing::ValuesIn(kAllMethods),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return core::sync_method_name(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Per-method protocol message accounting.
// ---------------------------------------------------------------------------

TEST(ClusterProtocol, BaselineUsesNotifyAndPull) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kBaseline));
  cluster.run(0, 2);
  cluster.drain();
  EXPECT_GT(cluster.notifies_sent(), 0);
  EXPECT_GT(cluster.pulls_sent(), 0);
  // One notify per slice round per worker; one pull per slice round per
  // worker (issued after the whole layer is notified).
  const auto expected = cluster.partition().num_slices() * 4 * 2;
  EXPECT_EQ(cluster.notifies_sent(), expected);
  EXPECT_EQ(cluster.pulls_sent(), expected);
}

TEST(ClusterProtocol, P3HasNoNotifyOrPull) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kP3));
  cluster.run(0, 2);
  cluster.drain();
  EXPECT_EQ(cluster.notifies_sent(), 0);
  EXPECT_EQ(cluster.pulls_sent(), 0);
  EXPECT_GT(cluster.params_sent(), 0);
}

TEST(ClusterProtocol, TensorFlowStyleHasPullsButNoNotify) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kTensorFlowStyle));
  cluster.run(0, 2);
  cluster.drain();
  EXPECT_EQ(cluster.notifies_sent(), 0);
  EXPECT_GT(cluster.pulls_sent(), 0);
}

TEST(ClusterProtocol, ParamsBytesConserved) {
  // Every worker receives exactly the model's bytes once per iteration.
  Cluster cluster(small_workload(), small_config(SyncMethod::kP3));
  const int iterations = 3;
  cluster.run(0, iterations);
  cluster.drain();
  const auto& part = cluster.partition();
  EXPECT_EQ(cluster.params_sent(), part.num_slices() * 4 * iterations);
}

TEST(ClusterProtocol, LargeLayerFragmentsOnWire) {
  // A 4M-parameter layer (16MB) under baseline -> 4 shards of 4MB on a
  // 4-server cluster; with 1MB fragments each shard becomes 4 messages.
  model::Workload w = small_workload(1, 4'000'000, 0.010);
  ClusterConfig cfg = small_config(SyncMethod::kBaseline);
  cfg.fragment_bytes = mib(1);
  Cluster cluster(w, cfg);
  cluster.run(0, 1);
  cluster.drain();
  // 4 shards/layer * ceil(4MB/1MB)=16 fragments per worker per iteration.
  EXPECT_EQ(cluster.pushes_sent(), 4 * 16);
}

TEST(ClusterProtocol, DeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(small_workload(), small_config(SyncMethod::kP3));
    return cluster.run(1, 4).throughput;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ClusterProtocol, InvalidConfigsThrow) {
  EXPECT_THROW(Cluster(small_workload(), small_config(SyncMethod::kP3, 0)),
               std::invalid_argument);
  ClusterConfig bad_frag = small_config(SyncMethod::kP3);
  bad_frag.fragment_bytes = 0;
  EXPECT_THROW(Cluster(small_workload(), bad_frag), std::invalid_argument);
  ClusterConfig bad_rate = small_config(SyncMethod::kP3);
  bad_rate.update_bytes_per_sec = 0;
  EXPECT_THROW(Cluster(small_workload(), bad_rate), std::invalid_argument);
}

TEST(ClusterProtocol, RunIsSingleUse) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kP3));
  cluster.run(0, 1);
  EXPECT_THROW(cluster.run(0, 1), std::logic_error);
}

TEST(ClusterProtocol, ComputeOverrideRequiresMatchingSizes) {
  ClusterConfig cfg = small_config(SyncMethod::kP3);
  cfg.fwd_times = {0.1};  // model has 4 layers
  cfg.bwd_times = {0.1};
  EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Qualitative performance relationships (the paper's design arguments).
// ---------------------------------------------------------------------------

TEST(ClusterPerformance, ComputeBoundWhenBandwidthAmple) {
  // At very high bandwidth every method should approach the compute bound.
  for (SyncMethod method : kAllMethods) {
    Cluster cluster(small_workload(), small_config(method, 4, 100.0));
    const auto result = cluster.run(2, 6);
    const double ideal = 4.0 * 4 / 0.010;  // workers * batch / compute
    EXPECT_GT(result.throughput, 0.85 * ideal)
        << core::sync_method_name(method);
    EXPECT_LE(result.throughput, 1.01 * ideal)
        << core::sync_method_name(method);
  }
}

TEST(ClusterPerformance, P3BeatsBaselineUnderConstrainedBandwidth) {
  // Heavy final layer (image-classification shape), tight bandwidth.
  model::Workload w;
  w.model = model::toy_custom({50'000, 100'000, 200'000, 3'000'000});
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  const double bw = 1.0;
  Cluster base(w, small_config(SyncMethod::kBaseline, 4, bw));
  Cluster p3(w, small_config(SyncMethod::kP3, 4, bw));
  const double t_base = base.run(2, 8).throughput;
  const double t_p3 = p3.run(2, 8).throughput;
  EXPECT_GT(t_p3, t_base * 1.05);
}

TEST(ClusterPerformance, ThroughputMonotonicInBandwidth) {
  model::Workload w = small_workload(4, 500'000, 0.020);
  double prev = 0.0;
  for (double bw : {0.5, 1.0, 2.0, 8.0}) {
    Cluster cluster(w, small_config(SyncMethod::kP3, 4, bw));
    const double t = cluster.run(2, 6).throughput;
    EXPECT_GE(t, prev * 0.999) << "bandwidth " << bw;
    prev = t;
  }
}

TEST(ClusterPerformance, JitterSlowsSynchronousTraining) {
  model::Workload w = small_workload();
  ClusterConfig cfg = small_config(SyncMethod::kP3, 4, 10.0);
  Cluster steady(w, cfg);
  cfg.compute_jitter = 0.3;
  Cluster jittery(w, cfg);
  // Synchronous SGD pays the max over workers: jitter strictly hurts.
  EXPECT_GT(steady.run(2, 10).throughput, jittery.run(2, 10).throughput);
}

TEST(ClusterPerformance, SingleWorkerUsesLoopbackOnly) {
  Cluster cluster(small_workload(), small_config(SyncMethod::kP3, 1, 0.001));
  const auto result = cluster.run(1, 4);
  // Even at 1 Mbps NIC rate a single colocated worker/server pair is
  // unaffected: all traffic is loopback.
  const double ideal = 1.0 * 4 / 0.010;
  EXPECT_GT(result.throughput, 0.8 * ideal);
}

TEST(ClusterTimeline, RecordsComputeAndServerLanes) {
  model::Workload w = small_workload(2, 50'000, 0.004);
  Cluster cluster(w, small_config(SyncMethod::kP3, 2, 10.0));
  trace::Timeline tl;
  cluster.attach_timeline(&tl);
  cluster.run(0, 2);
  cluster.drain();
  EXPECT_FALSE(tl.lane_spans("w0.cmp").empty());
  EXPECT_FALSE(tl.lane_spans("n0.srv").empty());
  EXPECT_FALSE(tl.lane_spans("n0.tx").empty());
}

}  // namespace
}  // namespace p3::ps
