#include "allreduce/ring.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "model/zoo.h"

namespace p3::ar {
namespace {

model::Workload small_workload(int layers = 4, std::int64_t params = 120'000,
                               TimeS compute = 0.010) {
  model::Workload w;
  w.model = model::toy_uniform(layers, params);
  w.batch_per_worker = 4;
  w.iter_compute_time = compute;
  return w;
}

ArConfig small_config(ArSchedule schedule, int workers = 4,
                      double bandwidth_gbps = 1.0) {
  ArConfig cfg;
  cfg.n_workers = workers;
  cfg.schedule = schedule;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.latency = us(25);
  return cfg;
}

// --- bucketing ---

TEST(MakeBuckets, PerLayerOnePerLayer) {
  const auto m = model::toy_uniform(5, 1000);
  const auto buckets = make_buckets(m, ArSchedule::kPerLayer, 0, 0);
  ASSERT_EQ(buckets.size(), 5u);
  // Generation order: final layer first, highest priority (rank 0).
  EXPECT_EQ(buckets[0].layers, std::vector<int>{4});
  EXPECT_EQ(buckets[0].priority, 0);
  EXPECT_EQ(buckets[4].layers, std::vector<int>{0});
  EXPECT_EQ(buckets[4].priority, 4);
}

TEST(MakeBuckets, FusedRespectsThreshold) {
  // 6 layers of 4KB; 10KB buckets -> groups of 3 (12KB each).
  const auto m = model::toy_uniform(6, 1000);
  const auto buckets = make_buckets(m, ArSchedule::kFused, 10'000, 0);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].layers, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(buckets[0].bytes, 12'000);
  EXPECT_EQ(buckets[1].layers, (std::vector<int>{0, 1, 2}));
}

TEST(MakeBuckets, FusedFlushesTail) {
  const auto m = model::toy_uniform(5, 1000);
  const auto buckets = make_buckets(m, ArSchedule::kFused, 8'000, 0);
  // 4KB layers, 8KB threshold -> {4,3}, {2,1}, {0}.
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[2].layers, std::vector<int>{0});
}

TEST(MakeBuckets, PrioritySlicedBoundsAndPriorities) {
  const auto m = model::toy_custom({120'000, 30'000});
  const auto buckets =
      make_buckets(m, ArSchedule::kPrioritySliced, 0, 50'000);
  ASSERT_EQ(buckets.size(), 4u);  // 3 slices for layer 0, 1 for layer 1
  Bytes total = 0;
  for (const auto& b : buckets) {
    EXPECT_LE(b.bytes, 4 * 50'000);
    EXPECT_EQ(b.priority, b.layers.front());
    total += b.bytes;
  }
  EXPECT_EQ(total, m.total_bytes());
}

TEST(MakeBuckets, ConserveBytesAcrossSchedules) {
  const auto m = model::resnet50();
  for (auto schedule : {ArSchedule::kPerLayer, ArSchedule::kFused,
                        ArSchedule::kPrioritySliced}) {
    const auto buckets = make_buckets(m, schedule, mib(25), 50'000);
    Bytes total = 0;
    std::set<int> covered;
    for (const auto& b : buckets) {
      total += b.bytes;
      for (int l : b.layers) covered.insert(l);
    }
    EXPECT_EQ(total, m.total_bytes()) << ar_schedule_name(schedule);
    EXPECT_EQ(covered.size(), static_cast<std::size_t>(m.num_layers()));
  }
}

TEST(MakeBuckets, InvalidArgumentsThrow) {
  const auto m = model::toy_uniform(2, 100);
  EXPECT_THROW(make_buckets(m, ArSchedule::kFused, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(make_buckets(m, ArSchedule::kPrioritySliced, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(make_buckets(model::ModelSpec{}, ArSchedule::kPerLayer, 0, 0),
               std::invalid_argument);
}

// --- cluster invariants, all schedules x sizes ---

class ArInvariants
    : public ::testing::TestWithParam<std::tuple<ArSchedule, int>> {};

TEST_P(ArInvariants, EveryLayerAdvancesEveryIteration) {
  const auto [schedule, workers] = GetParam();
  ArCluster cluster(small_workload(), small_config(schedule, workers));
  const int iterations = 4;
  const auto result = cluster.run(1, iterations - 1);
  EXPECT_GT(result.throughput, 0.0);
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < 4; ++l) {
      EXPECT_GE(cluster.worker_layer_version(w, l), iterations - 1);
    }
  }
}

TEST_P(ArInvariants, EveryBucketRunsOncePerIteration) {
  const auto [schedule, workers] = GetParam();
  ArCluster cluster(small_workload(), small_config(schedule, workers));
  const int iterations = 3;
  const auto result = cluster.run(0, iterations);
  // Workers finish their last backward before the engine completes the last
  // round, so the engine has run at least (iterations-1) full rounds and at
  // most iterations rounds.
  const auto per_round =
      static_cast<std::int64_t>(cluster.buckets().size());
  EXPECT_GE(result.collectives_run, per_round * (iterations - 1));
  EXPECT_LE(result.collectives_run, per_round * iterations);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesByWorkers, ArInvariants,
    ::testing::Combine(::testing::Values(ArSchedule::kPerLayer,
                                         ArSchedule::kFused,
                                         ArSchedule::kPrioritySliced),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string name = ar_schedule_name(std::get<0>(info.param)) + "_w" +
                         std::to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- behaviour ---

TEST(ArCluster, PriorityExecutesUrgentSlicesEarly) {
  // Heavy final layer: FIFO must reduce it first (generated first); with
  // priority scheduling the first layer's slice jumps ahead of remaining
  // final-layer slices once its gradient is ready.
  model::Workload w;
  w.model = model::toy_custom({50'000, 50'000, 400'000});
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.010;

  ArConfig cfg = small_config(ArSchedule::kPrioritySliced, 2, 0.5);
  ArCluster cluster(w, cfg);
  cluster.run(0, 2);
  const auto& log = cluster.execution_log();
  const auto& buckets = cluster.buckets();
  // Within one round, the layer-0 bucket must not be executed last even
  // though its gradient is produced last.
  std::size_t round = buckets.size();
  ASSERT_GE(log.size(), round);
  bool layer0_before_end = false;
  for (std::size_t i = 0; i + 2 < round; ++i) {
    if (buckets[static_cast<std::size_t>(log[i])].layers.front() == 0) {
      layer0_before_end = true;
    }
  }
  EXPECT_TRUE(layer0_before_end);
}

TEST(ArCluster, ComputeBoundAtHighBandwidth) {
  for (auto schedule : {ArSchedule::kPerLayer, ArSchedule::kFused,
                        ArSchedule::kPrioritySliced}) {
    ArCluster cluster(small_workload(), small_config(schedule, 4, 100.0));
    const auto result = cluster.run(2, 5);
    const double ideal = 4.0 * 4 / 0.010;
    EXPECT_GT(result.throughput, 0.8 * ideal) << ar_schedule_name(schedule);
  }
}

TEST(ArCluster, FusionBeatsPerLayerForTinyLayers) {
  // Many small layers: per-layer collectives pay 2(n-1) launch overheads
  // each; fusion amortizes them.
  model::Workload w;
  w.model = model::toy_uniform(64, 2'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.004;

  ArConfig per_layer = small_config(ArSchedule::kPerLayer, 4, 1.0);
  per_layer.step_overhead = us(50);
  ArConfig fused = per_layer;
  fused.schedule = ArSchedule::kFused;
  fused.bucket_bytes = kib(256);

  ArCluster a(w, per_layer);
  ArCluster b(w, fused);
  EXPECT_GT(b.run(1, 5).throughput, a.run(1, 5).throughput);
}

TEST(ArCluster, DeterministicAcrossRuns) {
  auto once = [] {
    ArCluster cluster(small_workload(),
                      small_config(ArSchedule::kPrioritySliced, 4, 1.0));
    return cluster.run(1, 4).throughput;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(ArCluster, SingleWorkerSkipsNetwork) {
  ArCluster cluster(small_workload(),
                    small_config(ArSchedule::kFused, 1, 0.001));
  const auto result = cluster.run(1, 3);
  EXPECT_EQ(cluster.network().messages_posted(), 0);
  EXPECT_GT(result.throughput, 0.0);
}

TEST(ArCluster, InvalidConfigThrows) {
  EXPECT_THROW(ArCluster(small_workload(),
                         small_config(ArSchedule::kFused, 0)),
               std::invalid_argument);
  ArConfig bad = small_config(ArSchedule::kFused);
  bad.reduce_bytes_per_sec = 0;
  EXPECT_THROW(ArCluster(small_workload(), bad), std::invalid_argument);
}

TEST(ArCluster, RunIsSingleUse) {
  ArCluster cluster(small_workload(), small_config(ArSchedule::kFused));
  cluster.run(0, 1);
  EXPECT_THROW(cluster.run(0, 1), std::logic_error);
}

TEST(ArScheduleName, RoundTripNames) {
  EXPECT_EQ(ar_schedule_name(ArSchedule::kPerLayer), "AR-per-layer");
  EXPECT_EQ(ar_schedule_name(ArSchedule::kFused), "AR-fused");
  EXPECT_EQ(ar_schedule_name(ArSchedule::kPrioritySliced), "AR-P3");
}

// --- hierarchical (3-level) collective ---

ArConfig hier_config(ArSchedule schedule, bool three_level,
                     double oversub = 4.0) {
  ArConfig cfg = small_config(schedule, 4);
  cfg.topology.racks = {{0, 1}, {2, 3}};
  cfg.topology.oversubscription = oversub;
  cfg.three_level = three_level;
  return cfg;
}

TEST(ThreeLevel, RequiresAnActiveTopology) {
  ArConfig cfg = small_config(ArSchedule::kFused);
  cfg.three_level = true;
  EXPECT_THROW(ArCluster(small_workload(), cfg), std::invalid_argument);
}

TEST(ThreeLevel, MalformedTopologyRejected) {
  ArConfig cfg = hier_config(ArSchedule::kFused, true);
  cfg.topology.racks = {{0, 1}, {2}};  // node 3 uncovered
  EXPECT_THROW(ArCluster(small_workload(), cfg), std::invalid_argument);
}

TEST(ThreeLevel, EveryLayerAdvancesEveryIterationUnderEverySchedule) {
  for (auto schedule : {ArSchedule::kPerLayer, ArSchedule::kFused,
                        ArSchedule::kPrioritySliced}) {
    ArCluster cluster(small_workload(), hier_config(schedule, true));
    const auto result = cluster.run(1, 3);
    EXPECT_GT(result.throughput, 0.0);
    for (int w = 0; w < 4; ++w) {
      for (int l = 0; l < 4; ++l) {
        EXPECT_GE(cluster.worker_layer_version(w, l), 3)
            << ar_schedule_name(schedule) << " worker " << w << " layer "
            << l;
      }
    }
  }
}

TEST(ThreeLevel, CrossesTheSpineWithFewerBytesThanTheFlatRing) {
  // Same fabric, same buckets: the flat ring's wrap-around chunks hammer
  // the ToR uplink every step; the 3-level collective crosses it only
  // during the leader ring.
  Bytes ring_up = 0;
  Bytes tree_up = 0;
  {
    ArCluster ring(small_workload(), hier_config(ArSchedule::kFused, false));
    ring.run(1, 3);
    ring_up = ring.network().tor_uplink_bytes();
  }
  {
    ArCluster tree(small_workload(), hier_config(ArSchedule::kFused, true));
    tree.run(1, 3);
    tree_up = tree.network().tor_uplink_bytes();
  }
  EXPECT_GT(ring_up, 0);
  EXPECT_GT(tree_up, 0);
  EXPECT_LT(tree_up, ring_up);
}

TEST(ThreeLevel, RunsAreDeterministic) {
  const auto run_once = [] {
    ArCluster cluster(small_workload(),
                      hier_config(ArSchedule::kPrioritySliced, true));
    return cluster.run(1, 3);
  };
  const ArRunResult a = run_once();
  const ArRunResult b = run_once();
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_iteration_time, b.mean_iteration_time);
  EXPECT_EQ(a.collectives_run, b.collectives_run);
}

TEST(ThreeLevel, FlatDefaultKeepsTheNetworkFlat) {
  ArCluster cluster(small_workload(), small_config(ArSchedule::kFused));
  EXPECT_FALSE(cluster.network().topology_active());
  cluster.run(1, 2);
  EXPECT_EQ(cluster.network().tor_uplink_bytes(), 0);
}

}  // namespace
}  // namespace p3::ar
