// ParallelExecutor unit tests plus the golden-determinism suite: every sweep
// must produce bit-identical Series at any thread count, and same-seed fault
// runs must be byte-equal field by field. These are the tests the
// --threads flag's documentation points at.
#include "runner/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "model/zoo.h"
#include "ps/cluster.h"
#include "runner/experiment.h"

namespace p3::runner {
namespace {

// ---------------------------------------------------------------- executor

TEST(ParallelExecutor, ResultsComeBackInSubmissionOrder) {
  // Give earlier jobs longer sleeps so completion order inverts submission
  // order; map() must undo that.
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
      return i * i;
    });
  }
  ParallelExecutor executor(4);
  const auto results = executor.map(std::move(jobs));
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelExecutor, RunsEveryJobExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([&calls] { return ++calls; });
  }
  ParallelExecutor executor(3);  // far fewer threads than jobs
  const auto results = executor.map(std::move(jobs));
  EXPECT_EQ(calls.load(), 64);
  EXPECT_EQ(results.size(), 64u);
}

TEST(ParallelExecutor, SingleThreadRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::function<std::thread::id()>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back([] { return std::this_thread::get_id(); });
  }
  ParallelExecutor executor(1);
  for (const auto& id : executor.map(std::move(jobs))) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelExecutor, PropagatesTheFirstExceptionBySubmissionIndex) {
  std::vector<std::function<int()>> jobs;
  jobs.push_back([] { return 1; });
  jobs.push_back([]() -> int { throw std::runtime_error("job 1 failed"); });
  jobs.push_back([]() -> int { throw std::logic_error("job 2 failed"); });
  ParallelExecutor executor(2);
  try {
    executor.map(std::move(jobs));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 1 failed");  // index 1 beats index 2
  }
}

TEST(ParallelExecutor, ZeroThreadsMeansAutoDetect) {
  ParallelExecutor executor(0);
  std::vector<std::function<int()>> jobs{[] { return 7; }};
  EXPECT_EQ(executor.map(std::move(jobs)).front(), 7);
}

TEST(ParallelExecutor, SurvivesEmptyJobList) {
  ParallelExecutor executor(4);
  EXPECT_TRUE(executor.map(std::vector<std::function<int()>>{}).empty());
}

// ---------------------------------------------------- golden determinism

model::Workload tiny_workload() {
  model::Workload w;
  w.model = model::toy_uniform(3, 100'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.010;
  return w;
}

ps::ClusterConfig tiny_config() {
  ps::ClusterConfig cfg;
  cfg.n_workers = 2;
  cfg.bandwidth = gbps(2);
  return cfg;
}

MeasureOptions opts_with_threads(int threads) {
  MeasureOptions opts;
  opts.warmup = 1;
  opts.measured = 3;
  opts.threads = threads;
  return opts;
}

void expect_series_bitwise_equal(const std::vector<Series>& a,
                                 const std::vector<Series>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    // operator== on doubles: any ULP of drift fails, as it should.
    EXPECT_EQ(a[i].x, b[i].x) << "series " << a[i].name;
    EXPECT_EQ(a[i].y, b[i].y) << "series " << a[i].name;
  }
}

TEST(GoldenDeterminism, BandwidthSweepIsBitIdenticalAtAnyThreadCount) {
  const auto workload = tiny_workload();
  const std::vector<core::SyncMethod> methods = {
      core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
      core::SyncMethod::kP3};
  const std::vector<double> bandwidths = {0.5, 1, 2, 4};
  const auto serial = bandwidth_sweep(workload, tiny_config(), methods,
                                      bandwidths, opts_with_threads(1));
  for (int threads : {2, 4}) {
    const auto parallel = bandwidth_sweep(
        workload, tiny_config(), methods, bandwidths, opts_with_threads(threads));
    expect_series_bitwise_equal(serial, parallel);
  }
}

TEST(GoldenDeterminism, ScalabilitySweepIsBitIdenticalAtAnyThreadCount) {
  const auto workload = tiny_workload();
  const std::vector<core::SyncMethod> methods = {core::SyncMethod::kBaseline,
                                                 core::SyncMethod::kP3};
  const auto serial = scalability_sweep(workload, tiny_config(), methods,
                                        {2, 4}, opts_with_threads(1));
  const auto parallel = scalability_sweep(workload, tiny_config(), methods,
                                          {2, 4}, opts_with_threads(4));
  expect_series_bitwise_equal(serial, parallel);
}

TEST(GoldenDeterminism, SliceSizeSweepIsBitIdenticalAtAnyThreadCount) {
  const auto workload = tiny_workload();
  const std::vector<std::int64_t> sizes = {10'000, 50'000, 100'000};
  const auto serial =
      slice_size_sweep(workload, tiny_config(), sizes, opts_with_threads(1));
  const auto parallel =
      slice_size_sweep(workload, tiny_config(), sizes, opts_with_threads(3));
  expect_series_bitwise_equal({serial}, {parallel});
}

// Two same-seed lossy runs, one on the main thread and one on a pool
// thread, compared field by field (doubles bitwise via memcmp).
void expect_bitwise(double a, double b, const char* what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
      << what << ": " << a << " vs " << b;
}

TEST(GoldenDeterminism, SameSeedFaultRunsAreByteIdenticalAcrossThreads) {
  const auto workload = tiny_workload();
  ps::ClusterConfig cfg = tiny_config();
  cfg.method = core::SyncMethod::kP3;
  cfg.faults.drop_prob = 0.01;
  cfg.seed = 1234;

  auto run = [&] {
    ps::Cluster cluster(workload, cfg);
    ps::RunResult r = cluster.run(1, 3);
    cluster.drain();
    return r;
  };

  const ps::RunResult serial = run();
  ParallelExecutor executor(2);
  std::vector<std::function<ps::RunResult()>> jobs{run, run};
  const auto pooled = executor.map(std::move(jobs));

  for (const auto& r : pooled) {
    expect_bitwise(r.throughput, serial.throughput, "throughput");
    expect_bitwise(r.mean_iteration_time, serial.mean_iteration_time,
                   "mean_iteration_time");
    expect_bitwise(r.mean_stall_time, serial.mean_stall_time,
                   "mean_stall_time");
    expect_bitwise(r.total_time, serial.total_time, "total_time");
    EXPECT_EQ(r.iterations_measured, serial.iterations_measured);
    ASSERT_EQ(r.iteration_times.size(), serial.iteration_times.size());
    for (std::size_t i = 0; i < r.iteration_times.size(); ++i) {
      expect_bitwise(r.iteration_times[i], serial.iteration_times[i],
                     "iteration_times[i]");
    }
    EXPECT_EQ(r.messages_dropped, serial.messages_dropped);
    EXPECT_EQ(r.retransmits, serial.retransmits);
    EXPECT_EQ(r.timeouts_fired, serial.timeouts_fired);
    EXPECT_EQ(r.duplicates_suppressed, serial.duplicates_suppressed);
    EXPECT_EQ(r.goodput_bytes, serial.goodput_bytes);
    EXPECT_EQ(r.wire_bytes, serial.wire_bytes);
  }
  // The fault plan actually did something, or this test proves nothing.
  EXPECT_GT(serial.messages_dropped, 0);
}

}  // namespace
}  // namespace p3::runner
