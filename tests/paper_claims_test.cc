// Regression guards for the paper's headline claims: scaled-down versions
// of the figure experiments with loose qualitative assertions, so a change
// that silently breaks a reproduced result fails CI rather than only
// showing up when someone reruns the benches. Each test names the paper
// claim it pins.
#include <gtest/gtest.h>

#include "model/zoo.h"
#include "allreduce/ring.h"
#include "runner/experiment.h"
#include "train/trainer.h"

namespace p3 {
namespace {

runner::MeasureOptions fast() {
  runner::MeasureOptions opts;
  opts.warmup = 2;
  opts.measured = 6;
  return opts;
}

double throughput(const model::Workload& w, core::SyncMethod method,
                  double bandwidth_gbps, int workers = 4) {
  ps::ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = method;
  cfg.bandwidth = gbps(bandwidth_gbps);
  cfg.rx_bandwidth = gbps(100);
  return runner::measure_throughput(w, cfg, fast());
}

// "P3 can improve the training throughput of ResNet-50 ... by as much as
// 25%" at constrained bandwidth (Fig 7a).
TEST(PaperClaims, Fig7ResNetP3WinsAtFourGbps) {
  const auto w = model::workload_resnet50();
  const double base = throughput(w, core::SyncMethod::kBaseline, 4);
  const double p3 = throughput(w, core::SyncMethod::kP3, 4);
  EXPECT_GT(p3, 1.20 * base);
}

// "the baseline throughput starts to drop in ResNet-50 below 6Gbps. At the
// same time, P3 maintains the linear throughput until ... 4Gbps" (Fig 7a).
TEST(PaperClaims, Fig7ResNetP3HoldsLinearLonger) {
  const auto w = model::workload_resnet50();
  const double plateau = 4.0 * w.batch_per_worker / w.iter_compute_time;
  EXPECT_GT(throughput(w, core::SyncMethod::kP3, 4), 0.95 * plateau);
  EXPECT_LT(throughput(w, core::SyncMethod::kBaseline, 4), 0.80 * plateau);
}

// "At 30Gbps, parameter slicing can provide [considerable] speedup on
// VGG-19. The speedup is further improved with P3" (Fig 7c).
TEST(PaperClaims, Fig7VggOrderingBaselineSlicingP3) {
  const auto w = model::workload_vgg19();
  const double base = throughput(w, core::SyncMethod::kBaseline, 15);
  const double slicing = throughput(w, core::SyncMethod::kSlicingOnly, 15);
  const double p3 = throughput(w, core::SyncMethod::kP3, 15);
  EXPECT_GT(slicing, 1.10 * base);
  EXPECT_GT(p3, 1.10 * slicing);
  EXPECT_GT(p3, 1.40 * base);  // paper: up to 66%
}

// "these models do not benefit from parameter slicing, as the layer sizes
// are relatively small in these DNNs" (Fig 7a/b commentary).
TEST(PaperClaims, Fig7ResNetSlicingAloneBuysLittle) {
  const auto w = model::workload_resnet50();
  const double base = throughput(w, core::SyncMethod::kBaseline, 4);
  const double slicing = throughput(w, core::SyncMethod::kSlicingOnly, 4);
  const double p3 = throughput(w, core::SyncMethod::kP3, 4);
  // Slicing's edge over baseline is small compared to P3's edge.
  EXPECT_LT(slicing - base, 0.5 * (p3 - base));
}

// "P3 always performs better than the baseline" (Section 5.3).
TEST(PaperClaims, Fig7P3NeverLoses) {
  for (const auto& w : {model::workload_resnet50(), model::workload_vgg19(),
                        model::workload_sockeye()}) {
    for (double bw : {2.0, 8.0, 30.0}) {
      EXPECT_GE(throughput(w, core::SyncMethod::kP3, bw),
                0.99 * throughput(w, core::SyncMethod::kBaseline, bw))
          << w.model.name << " @ " << bw;
    }
  }
}

// "P3 significantly improves the network utilization compared to the
// baseline" (Section 5.4, Figs 8/9).
TEST(PaperClaims, Fig89P3ReducesIdleTime) {
  const auto w = model::workload_vgg19();
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(15);
  cfg.rx_bandwidth = gbps(100);
  cfg.method = core::SyncMethod::kBaseline;
  const auto base = runner::utilization_trace(w, cfg, 0, fast());
  cfg.method = core::SyncMethod::kP3;
  const auto p3 = runner::utilization_trace(w, cfg, 0, fast());
  EXPECT_LT(p3.idle_fraction_out, base.idle_fraction_out);
  EXPECT_LT(p3.idle_fraction_in, base.idle_fraction_in);
}

// "we use a maximum granularity of 50,000 parameters per slice as it is
// found to be optimal empirically" (Section 5.7, Fig 12).
TEST(PaperClaims, Fig12FiftyThousandNearOptimal) {
  const auto w = model::workload_resnet50();
  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(4);
  cfg.rx_bandwidth = gbps(100);
  const auto sweep = runner::slice_size_sweep(
      w, cfg, {1'000, 50'000, 1'000'000}, fast());
  // The 50k point beats both extremes.
  EXPECT_GT(sweep.y[1], sweep.y[0]);
  EXPECT_GT(sweep.y[1], sweep.y[2]);
}

// "P3 always communicates full gradients and does not affect model
// convergence" vs DGC's approximation risk (Section 5.6, Fig 11) — at the
// aggressive 99.9% sparsity, full sync must not lose to DGC by more than
// noise, and must converge to the task ceiling.
TEST(PaperClaims, Fig11FullSyncIsSafe) {
  train::MixtureConfig mix;
  mix.noise = 1.6;
  const auto data = train::make_gaussian_mixture(mix);
  auto final_acc = [&](train::AggregationMode mode) {
    train::TrainerConfig cfg;
    cfg.n_workers = 4;
    cfg.batch_per_worker = 32;
    cfg.epochs = 40;
    cfg.hidden = {48, 48};
    cfg.sgd.lr = 0.1;
    cfg.sgd.momentum = 0.9;
    cfg.sgd.decay_epochs = {20, 30};
    cfg.mode = mode;
    cfg.dgc.sparsity = 0.999;
    cfg.dgc.momentum = 0.9;
    cfg.dgc.warmup_epochs = 4;
    train::ParallelTrainer trainer(data, cfg);
    return trainer.train().back().val_accuracy;
  };
  const double sync = final_acc(train::AggregationMode::kFullSync);
  const double dgc = final_acc(train::AggregationMode::kDgc);
  EXPECT_GT(sync, 0.90);
  EXPECT_GE(sync, dgc - 0.01);
}

// Section 6 extension claim: the principles carry to ring allreduce.
TEST(PaperClaims, Section6AllreduceP3BeatsFused) {
  const auto w = model::workload_vgg19();
  auto ar_throughput = [&](ar::ArSchedule schedule) {
    ar::ArConfig cfg;
    cfg.n_workers = 4;
    cfg.schedule = schedule;
    cfg.bandwidth = gbps(10);
    cfg.rx_bandwidth = gbps(100);
    ar::ArCluster cluster(w, cfg);
    return cluster.run(2, 6).throughput;
  };
  EXPECT_GT(ar_throughput(ar::ArSchedule::kPrioritySliced),
            1.15 * ar_throughput(ar::ArSchedule::kFused));
}

}  // namespace
}  // namespace p3
