#include "train/trainer.h"

#include <gtest/gtest.h>

namespace p3::train {
namespace {

Dataset easy_dataset(std::uint64_t seed = 1) {
  MixtureConfig cfg;
  cfg.classes = 4;
  cfg.dim = 8;
  cfg.train_per_class = 64;
  cfg.test_per_class = 32;
  cfg.noise = 0.4;
  cfg.seed = seed;
  return make_gaussian_mixture(cfg);
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.n_workers = 4;
  cfg.batch_per_worker = 16;
  cfg.epochs = 15;
  cfg.hidden = {16};
  cfg.sgd.lr = 0.1;
  cfg.sgd.momentum = 0.9;
  return cfg;
}

TEST(ParallelTrainer, FullSyncConverges) {
  const Dataset ds = easy_dataset();
  ParallelTrainer trainer(ds, base_config());
  const auto stats = trainer.train();
  ASSERT_EQ(stats.size(), 15u);
  EXPECT_GT(stats.back().val_accuracy, 0.9);
  // Loss should drop substantially.
  EXPECT_LT(stats.back().train_loss, 0.5 * stats.front().train_loss);
}

TEST(ParallelTrainer, FullSyncMatchesSingleWorkerBigBatch) {
  // Averaging per-worker gradients over equal shards is mathematically
  // identical to one worker with the union batch: P3/baseline never change
  // the computation, only the communication schedule.
  const Dataset ds = easy_dataset(3);
  TrainerConfig multi = base_config();
  multi.epochs = 3;
  TrainerConfig single = multi;
  single.n_workers = 1;
  single.batch_per_worker = multi.batch_per_worker * 4;

  ParallelTrainer a(ds, multi);
  ParallelTrainer b(ds, single);
  const auto sa = a.train();
  const auto sb = b.train();
  for (std::size_t e = 0; e < sa.size(); ++e) {
    EXPECT_NEAR(sa[e].val_accuracy, sb[e].val_accuracy, 1e-9) << "epoch " << e;
    EXPECT_NEAR(sa[e].train_loss, sb[e].train_loss, 1e-4) << "epoch " << e;
  }
}

TEST(ParallelTrainer, DeterministicForSeed) {
  const Dataset ds = easy_dataset();
  TrainerConfig cfg = base_config();
  cfg.epochs = 3;
  ParallelTrainer a(ds, cfg);
  ParallelTrainer b(ds, cfg);
  const auto sa = a.train();
  const auto sb = b.train();
  for (std::size_t e = 0; e < sa.size(); ++e) {
    EXPECT_DOUBLE_EQ(sa[e].train_loss, sb[e].train_loss);
    EXPECT_DOUBLE_EQ(sa[e].val_accuracy, sb[e].val_accuracy);
  }
}

TEST(ParallelTrainer, DgcConvergesCloseToSync) {
  const Dataset ds = easy_dataset();
  TrainerConfig sync_cfg = base_config();
  sync_cfg.epochs = 20;
  TrainerConfig dgc_cfg = sync_cfg;
  dgc_cfg.mode = AggregationMode::kDgc;
  dgc_cfg.dgc.sparsity = 0.95;
  dgc_cfg.dgc.momentum = dgc_cfg.sgd.momentum;
  dgc_cfg.dgc.warmup_epochs = 4;

  ParallelTrainer sync(ds, sync_cfg);
  ParallelTrainer dgc(ds, dgc_cfg);
  const double acc_sync = sync.train().back().val_accuracy;
  const double acc_dgc = dgc.train().back().val_accuracy;
  EXPECT_GT(acc_dgc, 0.8);                  // still learns
  EXPECT_GE(acc_sync, acc_dgc - 0.03);      // sync at least as good (±noise)
}

TEST(ParallelTrainer, ExtremeSparsityHurtsMore) {
  const Dataset ds = easy_dataset();
  TrainerConfig mild = base_config();
  mild.epochs = 10;
  mild.mode = AggregationMode::kDgc;
  mild.dgc.sparsity = 0.5;
  mild.dgc.warmup_epochs = 0;
  TrainerConfig extreme = mild;
  extreme.dgc.sparsity = 0.999;

  ParallelTrainer a(ds, mild);
  ParallelTrainer b(ds, extreme);
  const double acc_mild = a.train().back().val_accuracy;
  const double acc_extreme = b.train().back().val_accuracy;
  EXPECT_GE(acc_mild, acc_extreme - 0.02);
}

TEST(ParallelTrainer, AsyncConvergesButTrailsSync) {
  const Dataset ds = easy_dataset();
  TrainerConfig sync_cfg = base_config();
  sync_cfg.epochs = 12;
  sync_cfg.sgd.lr = 0.2;
  TrainerConfig async_cfg = sync_cfg;
  async_cfg.mode = AggregationMode::kAsync;
  async_cfg.staleness = 3;

  ParallelTrainer sync(ds, sync_cfg);
  ParallelTrainer async_t(ds, async_cfg);
  const double acc_sync = sync.train().back().val_accuracy;
  const double acc_async = async_t.train().back().val_accuracy;
  EXPECT_GT(acc_async, 0.5);  // learns something
  EXPECT_GE(acc_sync + 1e-9, acc_async);  // stale updates never help here
}

TEST(ParallelTrainer, EpochStatsWellFormed) {
  const Dataset ds = easy_dataset();
  TrainerConfig cfg = base_config();
  cfg.epochs = 2;
  ParallelTrainer trainer(ds, cfg);
  const auto stats = trainer.train();
  EXPECT_EQ(stats[0].epoch, 0);
  EXPECT_EQ(stats[1].epoch, 1);
  EXPECT_GT(stats[0].train_loss, 0.0);
  EXPECT_GE(stats[0].val_accuracy, 0.0);
  EXPECT_LE(stats[0].val_accuracy, 1.0);
}

TEST(ParallelTrainer, InvalidWorkerCountThrows) {
  const Dataset ds = easy_dataset();
  TrainerConfig cfg = base_config();
  cfg.n_workers = 0;
  EXPECT_THROW(ParallelTrainer(ds, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace p3::train
