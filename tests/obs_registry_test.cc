#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace p3::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  explicit TempFile(const char* name)
      : path(::testing::TempDir() + "/" + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  ++c;
  c += 5;
  c.inc();
  c.inc(3);
  EXPECT_EQ(c.value(), 10);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, TracksHighWaterMark) {
  Gauge g;
  g.set(3.0);
  g.set(7.0);
  g.set(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  EXPECT_DOUBLE_EQ(g.max(), 7.0);
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.1);    // bucket 0 (<= bound)
  h.observe(0.5);    // bucket 1
  h.observe(10.0);   // bucket 2
  h.observe(100.0);  // overflow
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.5 + 10.0 + 100.0);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow bucket
}

TEST(Histogram, QuantilesAtBucketResolution) {
  Histogram h({0.1, 0.5, 1.0});
  for (int i = 0; i < 90; ++i) h.observe(0.05);  // first bucket
  for (int i = 0; i < 9; ++i) h.observe(0.4);    // second bucket
  h.observe(2.0);                                // overflow
  // Quantiles resolve to the smallest bound covering the rank.
  EXPECT_DOUBLE_EQ(h.p50(), 0.1);
  EXPECT_DOUBLE_EQ(h.p90(), 0.1);
  EXPECT_DOUBLE_EQ(h.p99(), 0.5);
  // Ranks landing in the overflow bucket report 2x the last bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::quantile_from_counts({}, {}, 0.99), 0.0);
}

TEST(Histogram, QuantileFromExternalCounts) {
  // The static form serves windowed deltas (autoscaler): same semantics as
  // the member accessors over an accumulated count vector.
  const std::vector<double> bounds = {0.1, 0.2, 0.4};
  const std::vector<std::int64_t> counts = {5, 0, 4, 1};  // last = overflow
  EXPECT_DOUBLE_EQ(Histogram::quantile_from_counts(bounds, counts, 0.50), 0.1);
  EXPECT_DOUBLE_EQ(Histogram::quantile_from_counts(bounds, counts, 0.90), 0.4);
  EXPECT_DOUBLE_EQ(Histogram::quantile_from_counts(bounds, counts, 0.99), 0.8);
}

TEST(Registry, SnapshotHistogramQuantileRows) {
  Registry r;
  auto& h = r.histogram("lat", {0.5, 1.0});
  for (int i = 0; i < 90; ++i) h.observe(0.2);
  for (int i = 0; i < 10; ++i) h.observe(0.8);
  bool saw_p50 = false, saw_p90 = false, saw_p99 = false;
  for (const auto& row : r.snapshot()) {
    if (row.metric != "lat") continue;
    if (row.field == "p50") {
      saw_p50 = true;
      EXPECT_EQ(row.value, "0.5");
    }
    if (row.field == "p90") saw_p90 = true;
    if (row.field == "p99") {
      saw_p99 = true;
      EXPECT_EQ(row.value, "1");
    }
  }
  EXPECT_TRUE(saw_p50);
  EXPECT_TRUE(saw_p90);
  EXPECT_TRUE(saw_p99);
}

TEST(Histogram, MeanOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry r;
  Counter& a = r.counter("a");
  // Creating many more instruments must not invalidate `a` (deque storage).
  for (int i = 0; i < 100; ++i) {
    r.counter("c" + std::to_string(i));
    r.gauge("g" + std::to_string(i));
  }
  Counter& a2 = r.counter("a");
  EXPECT_EQ(&a, &a2);
  ++a;
  EXPECT_EQ(r.counter("a").value(), 1);
}

TEST(Registry, TypeMismatchThrows) {
  Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::invalid_argument);
  EXPECT_THROW(r.histogram("x", {1.0}), std::invalid_argument);
  r.gauge("y");
  EXPECT_THROW(r.counter("y"), std::invalid_argument);
}

TEST(Registry, FindWithoutCreation) {
  Registry r;
  EXPECT_EQ(r.find_counter("nope"), nullptr);
  r.counter("c").inc(7);
  ASSERT_NE(r.find_counter("c"), nullptr);
  EXPECT_EQ(r.find_counter("c")->value(), 7);
  EXPECT_EQ(r.find_gauge("c"), nullptr);  // wrong type
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  Registry r;
  r.counter("z.second");
  r.gauge("a.first");  // alphabetically earlier, registered later
  const auto rows = r.snapshot();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].metric, "z.second");
  EXPECT_EQ(rows[0].type, "counter");
  EXPECT_EQ(rows[1].metric, "a.first");
  EXPECT_EQ(rows[1].type, "gauge");
}

TEST(Registry, SnapshotHistogramFields) {
  Registry r;
  auto& h = r.histogram("lat", {0.5, 1.0});
  h.observe(0.2);
  h.observe(2.0);
  bool saw_count = false, saw_sum = false, saw_bucket = false;
  for (const auto& row : r.snapshot()) {
    if (row.metric != "lat") continue;
    EXPECT_EQ(row.type, "histogram");
    if (row.field == "count") {
      saw_count = true;
      EXPECT_EQ(row.value, "2");
    }
    if (row.field == "sum") saw_sum = true;
    if (row.field.rfind("le_", 0) == 0) saw_bucket = true;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_sum);
  EXPECT_TRUE(saw_bucket);
}

TEST(Registry, WritesCsvAndJson) {
  Registry r;
  r.counter("protocol.pushes").inc(42);
  r.gauge("w0.depth").set(3.0);

  TempFile csv("obs_registry_test.csv");
  TempFile json("obs_registry_test.json");
  r.write_csv(csv.path);
  r.write_json(json.path);

  const std::string csv_text = slurp(csv.path);
  EXPECT_NE(csv_text.find("metric,type,field,value"), std::string::npos);
  EXPECT_NE(csv_text.find("protocol.pushes,counter,value,42"),
            std::string::npos);

  const std::string json_text = slurp(json.path);
  EXPECT_NE(json_text.find("\"protocol.pushes\""), std::string::npos);
  EXPECT_NE(json_text.find("\"w0.depth\""), std::string::npos);
}

}  // namespace
}  // namespace p3::obs
