// Partition tolerance end to end: a fabric cut must never open a
// dual-primary window or deliver a message across an active cut, for any
// cut shape (symmetric, asymmetric, flapping) — quorum gates minority-side
// failover, beacon echoes fence a primary the majority stopped hearing,
// minority workers park pushes and drain them exactly-once on heal, and
// the whole plane stays bit-reproducible with drifting node clocks.
#include "ps/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "model/zoo.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ClusterConfig partition_config(SyncMethod method) {
  ClusterConfig cfg;
  cfg.n_workers = 5;  // odd: {0, 1} is a strict minority against {2, 3, 4}
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.faults.lease_duration = 0.1;
  cfg.max_sim_time = 60.0;  // fail fast if the heal path wedges
  return cfg;
}

/// The canonical drill: nodes {0, 1} cleaved from the {2, 3, 4} majority.
net::NetPartition minority_cut(TimeS start, TimeS heal) {
  net::NetPartition p;
  p.side_a = {0, 1};
  p.side_b = {2, 3, 4};
  p.start = start;
  p.heal = heal;
  return p;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

/// Exactly-once check over the healed cluster: every slice's version equals
/// the iteration count (a double-applied parked or re-pushed slice would
/// overshoot the contribution ledger's per-round cap), and every worker saw
/// every layer.
void expect_converged(const Cluster& cluster, int layers,
                      std::int64_t iterations, int workers) {
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Tentpole acceptance, symmetric cut, every sync method: the minority side
// is quorum-gated (it wants to fail over the majority's groups and must be
// denied), nothing crosses the active cut, no dual-primary window opens,
// and the healed cluster converges exactly-once with all views agreeing on
// leadership.
// ---------------------------------------------------------------------------

class SymmetricPartition : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(SymmetricPartition, QuorumGatesMinorityAndHealConvergesExactlyOnce) {
  ClusterConfig cfg = partition_config(GetParam());
  cfg.faults.partitions.push_back(minority_cut(0.05, 0.4));

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.partition_plane_armed());
  EXPECT_FALSE(cluster.clock_drift_armed());
  // The cut did real damage...
  EXPECT_GT(result.partition_drops, 0);
  // ...the minority wanted to elect successors for the majority's groups
  // (their leases all expired in its view) and was denied for lack of
  // quorum...
  EXPECT_GE(result.quorum_denied_failovers, 1);
  // ...minority workers parked pushes toward view-dead majority servers...
  EXPECT_GT(result.parked_pushes, 0);
  // ...and the two safety ground truths held throughout.
  EXPECT_EQ(result.dual_primary_windows, 0);
  EXPECT_EQ(result.cross_partition_deliveries, 0);

  // After heal every observer agrees on one primary per group.
  for (int g = 0; g < 5; ++g) {
    const int lead = cluster.leadership_view(0).primary(g);
    for (int n = 1; n < 5; ++n) {
      EXPECT_EQ(cluster.leadership_view(n).primary(g), lead)
          << "group " << g << " observer " << n;
    }
  }
  expect_converged(cluster, 4, iterations, 5);
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SymmetricPartition,
                         ::testing::ValuesIn(kAllMethods));

// ---------------------------------------------------------------------------
// Asymmetric cut: the minority can hear everyone (so its view stays whole
// and quorate), but the majority stops hearing the minority. Only the
// beacon echo — the majority's liveness belief about the minority, carried
// in the beacons the minority still receives — can tell a straddling
// minority primary to fence. It must fence before the majority-side lease
// (plus margin) runs out, so the failover never overlaps.
// ---------------------------------------------------------------------------

TEST(AsymmetricPartition, EchoFencesTheStraddlingPrimaryBeforeFailover) {
  ClusterConfig cfg = partition_config(SyncMethod::kP3);
  net::NetPartition p = minority_cut(0.05, 0.4);
  p.symmetric = false;  // only minority -> majority traffic is severed
  cfg.faults.partitions.push_back(p);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  // The minority-led straddling group self-fenced on negative echoes...
  EXPECT_GE(result.lease_expiries, 1);
  // ...and the majority elected its backup after the lease ran out.
  EXPECT_GE(result.failovers, 1);
  EXPECT_EQ(result.dual_primary_windows, 0);
  EXPECT_EQ(result.cross_partition_deliveries, 0);
  expect_converged(cluster, 4, iterations, 5);
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Flapping cut: every off-window renews the leases the on-window starved,
// so leadership never actually moves — all churn, no failover, and the
// safety invariants hold through every oscillation.
// ---------------------------------------------------------------------------

TEST(FlappingPartition, ChurnsWithoutFailoverOrDualWindows) {
  ClusterConfig cfg = partition_config(SyncMethod::kP3);
  net::NetPartition p = minority_cut(0.05, 0.45);
  p.flap_period = 0.1;  // 50 ms cut / 50 ms calm, four times over
  cfg.faults.partitions.push_back(p);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_GT(result.partition_drops, 0);
  // A 50 ms gap never exhausts a 100 ms lease: no successor may act.
  EXPECT_EQ(result.failovers, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  EXPECT_EQ(result.cross_partition_deliveries, 0);
  expect_converged(cluster, 4, iterations, 5);
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Clock drift: the same partitioned run with every node on its own drifting
// clock must stay safe (margins absorb the disagreement) and bit-identical
// — rerun to rerun, and across runner thread counts.
// ---------------------------------------------------------------------------

TEST(ClockDrift, PartitionedRunStaysSafeAndBitIdenticalUnderSkew) {
  const auto run_once = [] {
    ClusterConfig cfg = partition_config(SyncMethod::kP3);
    cfg.faults.partitions.push_back(minority_cut(0.05, 0.4));
    cfg.faults.clock_drift_rate = 1e-3;
    cfg.faults.clock_offset_bound = 0.01;
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 5);
    cluster.drain();
    EXPECT_TRUE(cluster.clock_drift_armed());
    return r;
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.dual_primary_windows, 0);
  EXPECT_EQ(a.cross_partition_deliveries, 0);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  EXPECT_EQ(a.parked_pushes, b.parked_pushes);
  EXPECT_EQ(a.quorum_denied_failovers, b.quorum_denied_failovers);
  EXPECT_EQ(a.lease_expiries, b.lease_expiries);
  EXPECT_EQ(a.failovers, b.failovers);
}

TEST(ClockDrift, PartitionSweepBitIdenticalAcrossRunnerThreads) {
  struct Point {
    SyncMethod method;
    bool skew;
    bool flap;
  };
  const std::vector<Point> grid = {
      {SyncMethod::kP3, true, false},
      {SyncMethod::kBaseline, true, true},
      {SyncMethod::kTensorFlowStyle, false, false},
  };
  const auto run_point = [](const Point& p) {
    ClusterConfig cfg = partition_config(p.method);
    net::NetPartition cut = minority_cut(0.05, 0.4);
    if (p.flap) cut.flap_period = 0.1;
    cfg.faults.partitions.push_back(cut);
    if (p.skew) {
      cfg.faults.clock_drift_rate = 1e-3;
      cfg.faults.clock_offset_bound = 0.01;
    }
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 4);
    cluster.drain();
    return r;
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& p : grid) {
      jobs.push_back([=] { return run_point(p); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "point " << i;
      EXPECT_EQ(a.partition_drops, b.partition_drops) << "point " << i;
      EXPECT_EQ(a.parked_pushes, b.parked_pushes) << "point " << i;
      EXPECT_EQ(a.quorum_denied_failovers, b.quorum_denied_failovers)
          << "point " << i;
      EXPECT_EQ(a.lease_expiries, b.lease_expiries) << "point " << i;
      EXPECT_EQ(a.failovers, b.failovers) << "point " << i;
      EXPECT_EQ(a.dual_primary_windows, b.dual_primary_windows)
          << "point " << i;
    }
  }
  // And every cell of the reference execution honored the invariants.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(by_threads[0][i].dual_primary_windows, 0) << "point " << i;
    EXPECT_EQ(by_threads[0][i].cross_partition_deliveries, 0)
        << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// Satellite: a NodePause shorter than the skew-adjusted lease margin (the
// lease plus the worst-case cross-clock disagreement a successor waits out)
// never triggers a supersession or failover — the paused primary's lease
// outlives the freeze even on drifting clocks.
// ---------------------------------------------------------------------------

TEST(ClockDrift, PauseShorterThanSkewAdjustedLeaseMarginNeverSupersedes) {
  ClusterConfig cfg = partition_config(SyncMethod::kP3);
  cfg.faults.clock_drift_rate = 1e-3;
  cfg.faults.clock_offset_bound = 0.01;
  // 60 ms freeze: beyond the 25 ms suspicion threshold (so detection and a
  // deferred failover *do* arm) but well inside the 100 ms lease plus the
  // 2 * rate * lease drift margin a successor must wait out.
  cfg.faults.pauses.push_back({1, 0.05, 0.06});

  Cluster cluster(small_workload(), cfg);
  const int iterations = 6;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.clock_drift_armed());
  EXPECT_FALSE(cluster.partition_plane_armed());  // drift is independent
  EXPECT_EQ(result.failovers, 0);
  EXPECT_EQ(result.supersessions, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, 5);
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Partition-free plans keep the plane disarmed: no parking, no quorum
// gating, no drift — the pre-partition protocol, bit for bit.
// ---------------------------------------------------------------------------

TEST(PartitionPlane, StaysDisarmedWithoutConfiguredPartitions) {
  ClusterConfig cfg = partition_config(SyncMethod::kP3);
  cfg.faults.drop_prob = 0.01;  // faults, but no cut

  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(1, 3);
  cluster.drain();

  EXPECT_FALSE(cluster.partition_plane_armed());
  EXPECT_FALSE(cluster.clock_drift_armed());
  EXPECT_EQ(result.partition_drops, 0);
  EXPECT_EQ(result.parked_pushes, 0);
  EXPECT_EQ(result.quorum_denied_failovers, 0);
  EXPECT_EQ(result.cross_partition_deliveries, 0);
}

}  // namespace
}  // namespace p3::ps
