// Unit tests for the DSSP staleness-bound controller: deterministic
// raise/decay behaviour over observation windows, static pinning for the
// ablation cells, the time-weighted mean-bound integral, and config
// validation.
#include "ps/staleness.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p3::ps {
namespace {

StalenessConfig base_config() {
  StalenessConfig cfg;
  cfg.s_min = 0;
  cfg.s_max = 4;
  cfg.window = 4;
  cfg.raise_fraction = 0.5;
  cfg.decay_fraction = 0.25;
  return cfg;
}

TEST(StalenessController, StartsAtSMin) {
  StalenessController c(base_config());
  EXPECT_EQ(c.bound(), 0);
  EXPECT_EQ(c.raises(), 0);
  EXPECT_EQ(c.decays(), 0);
}

TEST(StalenessController, RaisesWhenWindowMostlyBlocked) {
  StalenessController c(base_config());
  // 3 of 4 passages blocked (75% >= raise_fraction 50%): bound goes up.
  c.observe(0.1, 0.01);
  c.observe(0.2, 0.02);
  c.observe(0.3, 0.0);
  c.observe(0.4, 0.01);
  EXPECT_EQ(c.bound(), 1);
  EXPECT_EQ(c.raises(), 1);
}

TEST(StalenessController, DecaysWhenWaitsVanish) {
  StalenessConfig cfg = base_config();
  StalenessController c(cfg);
  // Push the bound up first.
  for (int i = 0; i < cfg.window; ++i) c.observe(0.1 * (i + 1), 0.01);
  ASSERT_EQ(c.bound(), 1);
  // A fully unblocked window (0% <= decay_fraction 25%) decays it back.
  for (int i = 0; i < cfg.window; ++i) c.observe(1.0 + 0.1 * i, 0.0);
  EXPECT_EQ(c.bound(), 0);
  EXPECT_EQ(c.decays(), 1);
}

TEST(StalenessController, DecayPatienceRequiresConsecutiveCalmWindows) {
  StalenessConfig cfg = base_config();
  cfg.decay_patience = 2;
  StalenessController c(cfg);
  // Raise to 1.
  for (int i = 0; i < cfg.window; ++i) c.observe(0.1 * (i + 1), 0.01);
  ASSERT_EQ(c.bound(), 1);
  // One calm window is not enough with patience 2.
  for (int i = 0; i < cfg.window; ++i) c.observe(1.0 + 0.1 * i, 0.0);
  EXPECT_EQ(c.bound(), 1);
  EXPECT_EQ(c.decays(), 0);
  // The second consecutive calm window completes the streak and decays
  // exactly one step.
  for (int i = 0; i < cfg.window; ++i) c.observe(2.0 + 0.1 * i, 0.0);
  EXPECT_EQ(c.bound(), 0);
  EXPECT_EQ(c.decays(), 1);
}

TEST(StalenessController, MidWindowResetsCalmStreak) {
  StalenessConfig cfg = base_config();
  cfg.raise_fraction = 0.75;
  cfg.decay_fraction = 0.25;
  cfg.decay_patience = 2;
  StalenessController c(cfg);
  // Raise to 1 (all blocked).
  for (int i = 0; i < cfg.window; ++i) c.observe(0.1 * (i + 1), 0.01);
  ASSERT_EQ(c.bound(), 1);
  // calm, mid (2/4 blocked), calm: the mid window breaks the streak, so
  // two non-consecutive calm windows do not decay.
  for (int i = 0; i < cfg.window; ++i) c.observe(1.0 + 0.1 * i, 0.0);
  c.observe(2.0, 0.01);
  c.observe(2.1, 0.01);
  c.observe(2.2, 0.0);
  c.observe(2.3, 0.0);
  for (int i = 0; i < cfg.window; ++i) c.observe(3.0 + 0.1 * i, 0.0);
  EXPECT_EQ(c.bound(), 1);
  EXPECT_EQ(c.decays(), 0);
  // The next consecutive calm window completes a streak of two.
  for (int i = 0; i < cfg.window; ++i) c.observe(4.0 + 0.1 * i, 0.0);
  EXPECT_EQ(c.bound(), 0);
  EXPECT_EQ(c.decays(), 1);
}

TEST(StalenessController, MidFractionHoldsSteady) {
  StalenessConfig cfg = base_config();
  cfg.raise_fraction = 0.75;
  cfg.decay_fraction = 0.25;
  StalenessController c(cfg);
  // 2 of 4 blocked (50%): between the thresholds, no change.
  c.observe(0.1, 0.01);
  c.observe(0.2, 0.0);
  c.observe(0.3, 0.01);
  c.observe(0.4, 0.0);
  EXPECT_EQ(c.bound(), 0);
  EXPECT_EQ(c.raises(), 0);
  EXPECT_EQ(c.decays(), 0);
}

TEST(StalenessController, BoundSaturatesAtSMax) {
  StalenessConfig cfg = base_config();
  cfg.s_max = 2;
  StalenessController c(cfg);
  for (int i = 0; i < 10 * cfg.window; ++i) {
    c.observe(0.01 * (i + 1), 0.005);
  }
  EXPECT_EQ(c.bound(), 2);
  EXPECT_EQ(c.raises(), 2);  // saturated raises stop counting
}

TEST(StalenessController, SMinFloorHolds) {
  StalenessConfig cfg = base_config();
  cfg.s_min = 1;
  StalenessController c(cfg);
  EXPECT_EQ(c.bound(), 1);
  for (int i = 0; i < 10 * cfg.window; ++i) {
    c.observe(0.01 * (i + 1), 0.0);
  }
  EXPECT_EQ(c.bound(), 1);
  EXPECT_EQ(c.decays(), 0);
}

TEST(StalenessController, FixedSPinsBoundAndIgnoresObservations) {
  StalenessConfig cfg = base_config();
  cfg.fixed_s = 3;
  StalenessController c(cfg);
  EXPECT_EQ(c.bound(), 3);
  for (int i = 0; i < 4 * cfg.window; ++i) {
    c.observe(0.01 * (i + 1), 0.5);
  }
  EXPECT_EQ(c.bound(), 3);
  EXPECT_EQ(c.raises(), 0);
  EXPECT_EQ(c.decays(), 0);
  EXPECT_DOUBLE_EQ(c.mean_bound(10.0), 3.0);
}

TEST(StalenessController, MeanBoundIsTimeWeighted) {
  StalenessConfig cfg = base_config();
  StalenessController c(cfg);
  // Bound 0 over [0, 4), then one raise at t=4.
  c.observe(1.0, 0.01);
  c.observe(2.0, 0.01);
  c.observe(3.0, 0.01);
  c.observe(4.0, 0.01);
  ASSERT_EQ(c.bound(), 1);
  // Over [0, 8]: 4 s at bound 0 plus 4 s at bound 1 -> mean 0.5.
  EXPECT_NEAR(c.mean_bound(8.0), 0.5, 1e-12);
  // At the switch instant the integral is all zeros.
  EXPECT_NEAR(c.mean_bound(4.0), 0.0, 1e-12);
}

TEST(StalenessController, DeterministicReplay) {
  // Same observation sequence, same decisions — the bit-identity
  // prerequisite for parallel sweeps.
  StalenessController a(base_config());
  StalenessController b(base_config());
  const double waits[] = {0.0, 0.01, 0.02, 0.0, 0.03, 0.0, 0.0, 0.01, 0.02};
  double t = 0.0;
  for (double w : waits) {
    t += 0.25;
    a.observe(t, w);
    b.observe(t, w);
  }
  EXPECT_EQ(a.bound(), b.bound());
  EXPECT_EQ(a.raises(), b.raises());
  EXPECT_EQ(a.decays(), b.decays());
  EXPECT_DOUBLE_EQ(a.mean_bound(t), b.mean_bound(t));
}

TEST(StalenessConfigValidate, RejectsBadRanges) {
  {
    StalenessConfig cfg = base_config();
    cfg.s_min = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    StalenessConfig cfg = base_config();
    cfg.s_max = cfg.s_min - 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    StalenessConfig cfg = base_config();
    cfg.window = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    StalenessConfig cfg = base_config();
    cfg.raise_fraction = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  {
    StalenessConfig cfg = base_config();
    cfg.decay_fraction = 0.9;  // above raise_fraction 0.5
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(base_config().validate());
}

}  // namespace
}  // namespace p3::ps
