#include <gtest/gtest.h>

#include "model/zoo.h"

namespace p3::model {
namespace {

TEST(Zoo, Resnet50ParameterCount) {
  const auto m = resnet50();
  // Published count: 25,557,032 (weights + biases + BN scale/shift).
  EXPECT_EQ(m.total_params(), 25'557'032);
}

TEST(Zoo, Resnet50LayerStructure) {
  const auto m = resnet50();
  // conv1+bn1, 16 bottlenecks (6 or 8 tensors each: 4 downsampled), fc.
  EXPECT_EQ(m.num_layers(), 2 + 16 * 6 + 4 * 2 + 1);
  EXPECT_EQ(m.layers.front().name, "conv1");
  EXPECT_EQ(m.layers.back().name, "fc");
}

TEST(Zoo, Resnet50HeaviestLayerIsModest) {
  // Figure 5a: ResNet-50's parameter distribution peaks around 2.4M (the
  // deep 3x3 512-channel convolutions), i.e. no dominant layer.
  const auto m = resnet50();
  const auto& heavy = m.layers[static_cast<std::size_t>(m.heaviest_layer())];
  EXPECT_EQ(heavy.params, 2'359'296);  // 3x3 512->512 conv
  EXPECT_LT(m.heaviest_fraction(), 0.10);
}

TEST(Zoo, Vgg19ParameterCount) {
  const auto m = vgg19();
  // Published count for configuration E: 143,667,240.
  EXPECT_EQ(m.total_params(), 143'667'240);
}

TEST(Zoo, Vgg19Fc6Dominates) {
  const auto m = vgg19();
  const int heavy = m.heaviest_layer();
  EXPECT_EQ(m.layers[static_cast<std::size_t>(heavy)].name, "fc6");
  EXPECT_EQ(m.layers[static_cast<std::size_t>(heavy)].params, 102'764'544);
  // The paper: "71.5% of all the parameters in the entire network".
  EXPECT_NEAR(m.heaviest_fraction(), 0.715, 0.001);
}

TEST(Zoo, Vgg19LayerCount) {
  EXPECT_EQ(vgg19().num_layers(), 19);  // 16 conv + 3 fc
}

TEST(Zoo, InceptionV3ParameterCount) {
  const auto m = inception_v3();
  // ~23.8M (aux classifier excluded); allow small tolerance for BN tensors.
  EXPECT_GT(m.total_params(), 23'000'000);
  EXPECT_LT(m.total_params(), 25'000'000);
}

TEST(Zoo, InceptionV3HasManySmallLayers) {
  const auto m = inception_v3();
  EXPECT_GT(m.num_layers(), 150);
  // Figure 5a analog: no layer above 2.5M params.
  EXPECT_LT(m.layers[static_cast<std::size_t>(m.heaviest_layer())].params,
            2'500'000);
}

TEST(Zoo, SockeyeHeavyInitialLayer) {
  const auto m = sockeye();
  // "Unlike image classification models, the heaviest layer in this model
  // is the initial layer."
  EXPECT_EQ(m.heaviest_layer(), 0);
  EXPECT_EQ(m.layers[0].name, "encoder.embed");
  EXPECT_NEAR(static_cast<double>(m.layers[0].params), 8.5e6, 0.2e6);
}

TEST(Zoo, SockeyeTotalParams) {
  const auto m = sockeye();
  EXPECT_GT(m.total_params(), 30'000'000);
  EXPECT_LT(m.total_params(), 42'000'000);
  EXPECT_EQ(m.sample_unit, "sentences");
}

TEST(Zoo, Resnet110ParameterCount) {
  const auto m = resnet110_cifar();
  // ~1.73M for CIFAR ResNet-110.
  EXPECT_GT(m.total_params(), 1'600'000);
  EXPECT_LT(m.total_params(), 1'900'000);
}

TEST(Zoo, TransformerShape) {
  const auto m = transformer_base();
  EXPECT_GT(m.total_params(), 55'000'000);
  EXPECT_LT(m.total_params(), 66'000'000);
  // Heavy tied embedding sits at the very front.
  EXPECT_EQ(m.heaviest_layer(), 0);
  EXPECT_EQ(m.layers[0].params, 32'000LL * 512);
  EXPECT_EQ(m.sample_unit, "sentences");
}

TEST(Zoo, AlexnetSkew) {
  const auto m = alexnet();
  EXPECT_GT(m.total_params(), 60'000'000);
  EXPECT_LT(m.total_params(), 63'000'000);
  const int heavy = m.heaviest_layer();
  EXPECT_EQ(m.layers[static_cast<std::size_t>(heavy)].name, "fc6");
  EXPECT_GT(m.heaviest_fraction(), 0.60);
}

TEST(Zoo, ToyUniform) {
  const auto m = toy_uniform(3, 1000);
  ASSERT_EQ(m.num_layers(), 3);
  EXPECT_EQ(m.total_params(), 3000);
  EXPECT_EQ(m.layers[0].name, "L1");
  for (const auto& l : m.layers) EXPECT_DOUBLE_EQ(l.fwd_flops, 1.0);
}

TEST(Zoo, ToyCustom) {
  const auto m = toy_custom({100, 300, 100}, {1.0, 3.0, 1.0});
  ASSERT_EQ(m.num_layers(), 3);
  EXPECT_EQ(m.layers[1].params, 300);
  EXPECT_DOUBLE_EQ(m.layers[1].fwd_flops, 3.0);
  EXPECT_EQ(m.heaviest_layer(), 1);
}

TEST(Zoo, ToyCustomValidation) {
  EXPECT_THROW(toy_custom({}), std::invalid_argument);
  EXPECT_THROW(toy_custom({1, 2}, {1.0}), std::invalid_argument);
}

TEST(Zoo, LayerBytesAreFp32) {
  const auto m = toy_uniform(2, 50'000);
  EXPECT_EQ(m.layer_bytes(0), 200'000);
  EXPECT_EQ(m.total_bytes(), 400'000);
}

TEST(Zoo, GradientSizesMatchPaperScale) {
  // "each worker machine generates and synchronizes hundreds of megabytes
  // of gradient values" — VGG-19 is ~574 MB, ResNet-50 ~102 MB.
  EXPECT_NEAR(static_cast<double>(vgg19().total_bytes()), 574.7e6, 1e6);
  EXPECT_NEAR(static_cast<double>(resnet50().total_bytes()), 102.2e6, 0.5e6);
}

}  // namespace
}  // namespace p3::model
