// End-to-end slice-lifecycle invariants: every sync method, fault-free,
// delivers each (worker, slice, iteration) exactly one param-ready and obeys
// the stage order; crash/failover runs may lose in-flight round trips but
// must never regress a stage or deliver a slice twice.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "model/zoo.h"
#include "obs/analysis.h"
#include "obs/tracer.h"
#include "ps/cluster.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ClusterConfig base_config(SyncMethod method, int workers = 3) {
  ClusterConfig cfg;
  cfg.n_workers = workers;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.max_sim_time = 60.0;
  return cfg;
}

using Key = std::tuple<int, std::int32_t, std::int64_t>;

std::map<Key, int> param_ready_counts(
    const std::vector<obs::LifecycleRecord>& records) {
  std::map<Key, int> counts;
  for (const auto& r : records) {
    if (r.stage == obs::Stage::kParamReady) {
      ++counts[Key{r.worker, r.slice, r.iteration}];
    }
  }
  return counts;
}

class LifecycleAllMethods : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(LifecycleAllMethods, ParamReadyExactlyOncePerIteration) {
  const ClusterConfig cfg = base_config(GetParam());
  Cluster cluster(small_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  const int warmup = 1, measured = 3;
  cluster.run(warmup, measured);

  EXPECT_TRUE(tracer.validate().empty());

  const auto& records = tracer.lifecycle_records();
  ASSERT_FALSE(records.empty());
  // Fault-free runs satisfy the full ordering, notify <= pull included.
  EXPECT_TRUE(obs::lifecycle_violations(records, /*strict=*/true).empty());

  const auto counts = param_ready_counts(records);
  const auto slices = cluster.partition().num_slices();
  const std::int64_t iterations = warmup + measured;
  // The run stops once every worker finishes its compute loop, so the final
  // iteration's parameter returns can still be in flight: exactly once for
  // every iteration a later forward pass gates on, at most once for the last.
  for (int w = 0; w < cfg.n_workers; ++w) {
    for (std::int32_t s = 0; s < slices; ++s) {
      for (std::int64_t i = 0; i + 1 < iterations; ++i) {
        const auto it = counts.find(Key{w, s, i});
        ASSERT_NE(it, counts.end())
            << "no param-ready for worker " << w << " slice " << s << " iter "
            << i;
        EXPECT_EQ(it->second, 1)
            << "worker " << w << " slice " << s << " iter " << i;
      }
    }
  }
  for (const auto& [key, count] : counts) {
    EXPECT_EQ(count, 1) << "duplicate param-ready for worker "
                        << std::get<0>(key) << " slice " << std::get<1>(key)
                        << " iter " << std::get<2>(key);
    EXPECT_LT(std::get<2>(key), iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, LifecycleAllMethods,
                         ::testing::ValuesIn(kAllMethods));

class LifecycleCrash : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(LifecycleCrash, NoStageRegressionOrDoubleDeliveryUnderFailover) {
  ClusterConfig cfg = base_config(GetParam(), /*workers=*/4);
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  net::NodeCrash crash;
  crash.node = 3;  // permanent: kills worker 3 and server 3
  crash.at = 0.05;
  cfg.faults.crashes.push_back(crash);

  Cluster cluster(small_workload(), cfg);
  obs::Tracer tracer;
  cluster.attach_tracer(&tracer);
  cluster.run(1, 3);

  EXPECT_TRUE(tracer.validate().empty());

  const auto& records = tracer.lifecycle_records();
  ASSERT_FALSE(records.empty());
  // Recovery re-notifications can attribute notify to a later round, so the
  // strict notify<=pull ordering is waived; the core chain must still hold.
  EXPECT_TRUE(obs::lifecycle_violations(records, /*strict=*/false).empty());

  // Exactly-once delivery: failover may drop round trips, never duplicate.
  for (const auto& [key, count] : param_ready_counts(records)) {
    EXPECT_EQ(count, 1) << "worker " << std::get<0>(key) << " slice "
                        << std::get<1>(key) << " iter " << std::get<2>(key);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, LifecycleCrash,
                         ::testing::ValuesIn(kAllMethods));

}  // namespace
}  // namespace p3::ps
