#include "common/log.h"

#include <gtest/gtest.h>

namespace p3 {
namespace {

TEST(Log, DefaultLevelIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, LevelIsSettable) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, MacrosCompileAndStream) {
  // Smoke test: the macros must accept streamed values of mixed types and
  // respect the threshold (output goes to stderr; not captured here).
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  P3_DEBUG << "dropped " << 42;       // below threshold: skipped
  P3_INFO << "dropped " << 1.5;       // below threshold: skipped
  set_log_level(LogLevel::kDebug);
  P3_DEBUG << "emitted " << "fine";
  set_log_level(original);
  SUCCEED();
}

TEST(Log, ThresholdShortCircuitsEvaluation) {
  // The message expression must not be evaluated when filtered out.
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "x";
  };
  P3_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  P3_ERROR << count();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

}  // namespace
}  // namespace p3
