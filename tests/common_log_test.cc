#include "common/log.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace p3 {
namespace {

TEST(Log, DefaultLevelIsInfo) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST(Log, LevelIsSettable) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Log, MacrosCompileAndStream) {
  // Smoke test: the macros must accept streamed values of mixed types and
  // respect the threshold (output goes to stderr; not captured here).
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  P3_DEBUG << "dropped " << 42;       // below threshold: skipped
  P3_INFO << "dropped " << 1.5;       // below threshold: skipped
  set_log_level(LogLevel::kDebug);
  P3_DEBUG << "emitted " << "fine";
  set_log_level(original);
  SUCCEED();
}

TEST(Log, ThresholdShortCircuitsEvaluation) {
  // The message expression must not be evaluated when filtered out.
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return "x";
  };
  P3_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  P3_ERROR << count();
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Log, ThreadHookSeesLevelAndMessage) {
  std::vector<std::pair<LogLevel, std::string>> seen;
  LogHook previous = set_thread_log_hook(
      [&seen](LogLevel level, const std::string& msg) {
        seen.emplace_back(level, msg);
      });
  P3_WARN << "watch " << 7;
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, LogLevel::kWarn);
  EXPECT_EQ(seen[0].second, "watch 7");
  // Filtered lines never reach the hook.
  P3_DEBUG << "dropped";
  EXPECT_EQ(seen.size(), 1u);
  set_thread_log_hook(std::move(previous));
}

TEST(Log, HookInstallReturnsPreviousForNesting) {
  int outer = 0, inner = 0;
  LogHook original =
      set_thread_log_hook([&outer](LogLevel, const std::string&) { ++outer; });
  {
    LogHook prev =
        set_thread_log_hook([&inner](LogLevel, const std::string&) { ++inner; });
    P3_INFO << "to inner";
    set_thread_log_hook(std::move(prev));
  }
  P3_INFO << "to outer";
  EXPECT_EQ(inner, 1);
  EXPECT_EQ(outer, 1);
  set_thread_log_hook(std::move(original));
}

TEST(Log, HooksArePerThread) {
  // A hook on this thread must not observe lines emitted by another thread,
  // and concurrent emission must be safe (line mutex + thread-local hooks).
  int here = 0;
  LogHook previous =
      set_thread_log_hook([&here](LogLevel, const std::string&) { ++here; });
  int there = 0;
  std::thread other([&there] {
    LogHook prev = set_thread_log_hook(
        [&there](LogLevel, const std::string&) { ++there; });
    for (int i = 0; i < 100; ++i) P3_INFO << "other " << i;
    set_thread_log_hook(std::move(prev));
  });
  for (int i = 0; i < 100; ++i) P3_INFO << "main " << i;
  other.join();
  EXPECT_EQ(here, 100);
  EXPECT_EQ(there, 100);
  set_thread_log_hook(std::move(previous));
}

}  // namespace
}  // namespace p3
