#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace p3::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-0.1, [] {}), std::invalid_argument);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  bool ran = false;
  sim.schedule_at(1.0, [&] { ran = true; });  // in the past
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule(0.5, recurse);
  };
  sim.schedule(0.5, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(static_cast<double>(i), [&] { ++count; });
  }
  sim.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Simulator, RunWhilePredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(static_cast<double>(i), [&] { ++count; });
  }
  EXPECT_TRUE(sim.run_while([&] { return count >= 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(sim.run_while([] { return false; }));  // queue drains
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

// --- batched same-time dispatch regressions ---

TEST(Simulator, RunUntilRunsTheWholeTieTimeBatchAtTheBoundary) {
  Simulator sim;
  int at_five = 0;
  int after = 0;
  for (int i = 0; i < 4; ++i) sim.schedule(5.0, [&] { ++at_five; });
  sim.schedule(5.0, [&] {
    ++at_five;
    // Zero-delay event scheduled from inside the boundary batch: it is
    // part of time 5.0 and must also run before run_until returns.
    sim.schedule(0.0, [&] { ++at_five; });
  });
  sim.schedule(5.0 + 1e-9, [&] { ++after; });
  sim.run_until(5.0);
  EXPECT_EQ(at_five, 6);
  EXPECT_EQ(after, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(after, 1);
}

TEST(Simulator, CountsEventsAppendedToAnOpenBatch) {
  Simulator sim;
  for (int i = 0; i < 3; ++i) {
    sim.schedule(1.0, [&] { sim.schedule(0.0, [] {}); });
  }
  sim.run();
  EXPECT_EQ(sim.events_executed(), 6u);
}

TEST(Simulator, ZeroDelayChainsPreserveFifoOrderUnderStress) {
  // 10k zero-delay events at the same timestamp, half scheduled up front
  // and half appended from inside the running batch; (time, seq) order
  // means strict FIFO either way.
  Simulator sim;
  std::vector<int> order;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    sim.schedule(0.0, [&order, &sim, i] {
      order.push_back(i);
      sim.schedule(0.0, [&order, i] { order.push_back(kN + i); });
    });
  }
  sim.run();
  ASSERT_EQ(order.size(), 2u * kN);
  for (int i = 0; i < 2 * kN; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sim.events_executed(), 2u * kN);
}

TEST(Simulator, ScheduleAtPastDuringDispatchRunsAfterQueuedTies) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(2.0, [&] {
    order.push_back(0);
    sim.schedule_at(1.0, [&] { order.push_back(2); });  // past -> now, FIFO
  });
  sim.schedule(2.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, ThrowingEventLeavesRemainingBatchRunnable) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1.0, [&] { ++ran; });
  sim.schedule(1.0, [] { throw std::runtime_error("boom"); });
  sim.schedule(1.0, [&] { ++ran; });
  sim.schedule(2.0, [&] { ++ran; });
  EXPECT_THROW(sim.run(), std::runtime_error);
  EXPECT_EQ(ran, 1);       // only the event before the throw ran
  EXPECT_FALSE(sim.idle());
  sim.run();               // the re-queued remainder is still runnable
  EXPECT_EQ(ran, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, LargeCallbacksFallBackToTheHeapCorrectly) {
  // A capture bigger than EventFn's inline buffer must still run correctly
  // (boxed path) and in order with inline-stored neighbours.
  Simulator sim;
  std::vector<int> order;
  struct Big {
    double pad[12];  // 96 bytes > kInlineBytes
    std::vector<int>* order;
    void operator()() const { order->push_back(1); }
  };
  sim.schedule(1.0, [&] { order.push_back(0); });
  sim.schedule(1.0, Big{{}, &order});
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- coroutine task tests ---

Task sleeper(Simulator& sim, TimeS dt, std::vector<TimeS>& wakeups) {
  co_await sim.sleep(dt);
  wakeups.push_back(sim.now());
}

TEST(SimulatorTask, SleepResumesAtRightTime) {
  Simulator sim;
  std::vector<TimeS> wakeups;
  sim.spawn(sleeper(sim, 2.5, wakeups));
  sim.run();
  ASSERT_EQ(wakeups.size(), 1u);
  EXPECT_DOUBLE_EQ(wakeups[0], 2.5);
}

Task multi_sleep(Simulator& sim, std::vector<TimeS>& trace) {
  for (int i = 0; i < 4; ++i) {
    co_await sim.sleep(1.0);
    trace.push_back(sim.now());
  }
}

TEST(SimulatorTask, SequentialSleepsAccumulate) {
  Simulator sim;
  std::vector<TimeS> trace;
  sim.spawn(multi_sleep(sim, trace));
  sim.run();
  EXPECT_EQ(trace, (std::vector<TimeS>{1.0, 2.0, 3.0, 4.0}));
}

TEST(SimulatorTask, ZeroSleepYields) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(0.0, [&] { order.push_back(1); });
  sim.spawn([](Simulator& s, std::vector<int>& ord) -> Task {
    ord.push_back(0);  // runs eagerly on spawn
    co_await s.sleep(0.0);
    ord.push_back(2);  // resumes after already-queued same-time event
  }(sim, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

Task thrower(Simulator& sim) {
  co_await sim.sleep(1.0);
  throw std::runtime_error("task failure");
}

TEST(SimulatorTask, ExceptionPropagatesOutOfRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(SimulatorTask, BlockedTasksAreReclaimedAtTeardown) {
  // A task suspended forever must not leak (checked under ASan builds);
  // here we just ensure destruction is safe.
  auto sim = std::make_unique<Simulator>();
  sim->spawn([](Simulator& s) -> Task {
    co_await s.sleep(1e9);  // never reached within the run window
  }(*sim));
  sim->run_until(1.0);
  sim.reset();  // must not crash
  SUCCEED();
}

TEST(SimulatorTask, ManyTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& ord, int id) -> Task {
      co_await s.sleep(1.0 + (id % 5) * 0.25);
      ord.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  // Same delay => spawn order preserved; groups ordered by delay.
  std::vector<int> expected;
  for (int d = 0; d < 5; ++d) {
    for (int i = 0; i < 50; ++i) {
      if (i % 5 == d) expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace p3::sim
