// Membership plane in isolation and at its edges: detector semantics,
// leadership monotonicity, no false failover below the suspicion threshold
// under PR 1 loss plans, and a loud, well-formed failure when a shard group
// loses every replica at once.
#include "ps/membership.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "model/zoo.h"
#include "ps/cluster.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

MembershipConfig detector_config() {
  MembershipConfig cfg;
  cfg.n_nodes = 4;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  return cfg;
}

// ---------------------------------------------------------------------------
// Detector unit semantics.
// ---------------------------------------------------------------------------

TEST(Membership, SilenceBeyondTimeoutKillsOnce) {
  Membership view(detector_config(), 0);
  view.record_heartbeat(1, 0, 0.010);
  view.record_heartbeat(2, 0, 0.010);
  EXPECT_TRUE(view.check(0.020).empty());  // within the window
  const auto dead = view.check(0.040);     // 30 ms of silence
  EXPECT_EQ(dead.size(), 3u);              // peers 1, 2 and silent 3
  EXPECT_FALSE(view.alive(1));
  EXPECT_TRUE(view.alive(0));              // never suspects itself
  EXPECT_TRUE(view.check(0.050).empty());  // each transition reported once
}

TEST(Membership, BeaconRevivesSuspect) {
  Membership view(detector_config(), 0);
  view.check(0.030);
  EXPECT_FALSE(view.alive(2));
  view.record_heartbeat(2, 0, 0.031);
  EXPECT_TRUE(view.alive(2));
}

TEST(Membership, GhostBeaconFromOlderIncarnationIgnored) {
  Membership view(detector_config(), 0);
  view.record_heartbeat(1, 3, 0.010);  // restarted peer, incarnation 3
  view.check(0.050);
  EXPECT_FALSE(view.alive(1));
  view.record_heartbeat(1, 1, 0.051);  // stale pre-crash beacon
  EXPECT_FALSE(view.alive(1));         // must not revive the ghost
  view.record_heartbeat(1, 3, 0.052);
  EXPECT_TRUE(view.alive(1));
}

TEST(Membership, ResetRestoresOptimism) {
  Membership view(detector_config(), 0);
  view.check(0.030);
  EXPECT_FALSE(view.alive(1));
  view.reset(0.030);
  EXPECT_TRUE(view.alive(1));
  EXPECT_TRUE(view.check(0.040).empty());  // timers re-based at reset
}

TEST(Membership, RejectsDegenerateConfigs) {
  MembershipConfig cfg = detector_config();
  cfg.suspicion_timeout = cfg.heartbeat_period;  // <= one beacon period
  EXPECT_THROW(Membership(cfg, 0), std::invalid_argument);
  cfg = detector_config();
  cfg.n_nodes = 0;
  EXPECT_THROW(Membership(cfg, 0), std::invalid_argument);
  EXPECT_THROW(Membership(detector_config(), 7), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Leadership table: monotone epochs, deterministic tie-break.
// ---------------------------------------------------------------------------

TEST(ShardLeadership, ChainOffsetsFollowTheRing) {
  ShardLeadership lead(4, 3);
  EXPECT_EQ(lead.primary(2), 2);  // chain head leads initially
  EXPECT_EQ(lead.member(2, 1), 3);
  EXPECT_EQ(lead.member(3, 1), 0);  // wraps
  EXPECT_EQ(lead.chain_offset(2, 3), 1);
  EXPECT_EQ(lead.chain_offset(2, 1), -1);  // not a replica of group 2
}

TEST(ShardLeadership, AdoptionIsMonotoneWithChainTieBreak) {
  ShardLeadership lead(4, 3);
  EXPECT_TRUE(lead.adopt(0, 1, 1));
  EXPECT_FALSE(lead.adopt(0, 1, 1));       // same lease: no movement
  EXPECT_FALSE(lead.adopt(0, 0, 2));       // stale epoch rejected
  EXPECT_TRUE(lead.adopt(0, 1, 2));        // equal epoch, later offset wins
  EXPECT_FALSE(lead.adopt(0, 1, 1));       // earlier offset loses the tie
  EXPECT_TRUE(lead.adopt(0, 2, 0));        // higher epoch always wins
  EXPECT_EQ(lead.primary(0), 0);
  EXPECT_EQ(lead.epoch(0), 2);
  EXPECT_THROW(lead.adopt(0, 3, 3), std::invalid_argument);  // non-replica
}

// ---------------------------------------------------------------------------
// Elastic extensions: incarnation supersession, unjoined peers, joiner-led
// chains, and lease timing.
// ---------------------------------------------------------------------------

TEST(Membership, HigherIncarnationWhileAliveIsImmediateSupersession) {
  Membership view(detector_config(), 0);
  view.record_heartbeat(1, 1, 0.010);
  EXPECT_TRUE(view.alive(1));
  // The peer restarted *within* the silence threshold: its first beacon
  // carries a higher incarnation while the old process is still believed
  // alive. The detector must flag the handover immediately — the old
  // process is gone now, not after suspicion_timeout.
  const auto effect = view.record_heartbeat(1, 2, 0.012);
  EXPECT_TRUE(effect.superseded);
  EXPECT_FALSE(effect.revived);
  EXPECT_TRUE(view.alive(1));
  EXPECT_EQ(view.incarnation(1), 2);
  // Same incarnation again is an ordinary beacon, not a supersession.
  EXPECT_FALSE(view.record_heartbeat(1, 2, 0.014).superseded);
}

TEST(Membership, RevivalAfterSuspicionIsNotASupersession) {
  Membership view(detector_config(), 0);
  view.record_heartbeat(1, 1, 0.010);
  view.check(0.040);  // silence kills peer 1 first
  EXPECT_FALSE(view.alive(1));
  const auto effect = view.record_heartbeat(1, 2, 0.041);
  EXPECT_TRUE(effect.revived);
  EXPECT_FALSE(effect.superseded);  // the death was already observed
}

TEST(Membership, UnjoinedPeerIsDarkUntilFirstBeacon) {
  Membership view(detector_config(), 0);
  view.mark_unjoined(3);
  EXPECT_FALSE(view.joined(3));
  EXPECT_FALSE(view.alive(3));
  // An unjoined peer is never reported as a fresh death: it was never
  // alive to transition.
  const auto dead = view.check(0.040);
  EXPECT_EQ(std::count(dead.begin(), dead.end(), 3), 0);
  // reset() keeps unjoined peers dark (a restarted node must not invent
  // members it never heard from).
  view.reset(0.050);
  EXPECT_FALSE(view.alive(3));
  // The joiner's first beacon admits it; it is a join, not a supersession.
  const auto effect = view.record_heartbeat(3, 1, 0.060);
  EXPECT_FALSE(effect.superseded);
  EXPECT_TRUE(view.joined(3));
  EXPECT_TRUE(view.alive(3));
}

TEST(ShardLeadership, JoinerLedChainDerivesFromThePrimary) {
  ShardLeadership lead(4, 3, /*n_servers_total=*/6);
  EXPECT_EQ(lead.n_servers_total(), 6);
  // Hand group 2 to joiner 4: the joiner heads the chain and the home
  // ring's first two members (donor first) stay as backups.
  EXPECT_TRUE(lead.adopt(2, 1, 4));
  EXPECT_EQ(lead.primary(2), 4);
  EXPECT_EQ(lead.member(2, 0), 4);
  EXPECT_EQ(lead.member(2, 1), 2);
  EXPECT_EQ(lead.member(2, 2), 3);
  EXPECT_EQ(lead.chain_offset(2, 4), 0);
  EXPECT_EQ(lead.chain_offset(2, 2), 1);
  EXPECT_EQ(lead.chain_offset(2, 0), -1);
  // Other groups keep their home-ring chains.
  EXPECT_EQ(lead.member(3, 0), 3);
  EXPECT_EQ(lead.member(3, 1), 0);
}

TEST(ShardLeadership, JoinersRankAfterTheBaseRing) {
  ShardLeadership lead(4, 3, 6);
  // Base servers rank by home-ring offset; joiners rank after every base
  // server in id order, so equal-epoch claims resolve toward the joiner.
  EXPECT_TRUE(lead.adopt(0, 1, 1));
  EXPECT_TRUE(lead.adopt(0, 1, 4));   // joiner 4 outranks base 1
  EXPECT_FALSE(lead.adopt(0, 1, 2));  // base offset 2 loses to joiner 4
  EXPECT_TRUE(lead.adopt(0, 1, 5));   // joiner 5 outranks joiner 4
  EXPECT_EQ(lead.primary(0), 5);
  // A primary outside the cluster is still rejected.
  EXPECT_THROW(lead.adopt(0, 2, 6), std::invalid_argument);
  // And a total below the base ring is malformed.
  EXPECT_THROW(ShardLeadership(4, 2, 3), std::invalid_argument);
}

TEST(ShardLeadership, LeaseDeadlinesAreMonotoneAndExpirable) {
  ShardLeadership lead(4, 2, 5);
  EXPECT_DOUBLE_EQ(lead.lease_deadline(1), 0.0);  // never granted
  lead.renew_lease(1, 0.30);
  EXPECT_DOUBLE_EQ(lead.lease_deadline(1), 0.30);
  lead.renew_lease(1, 0.20);  // stale renewal never shortens
  EXPECT_DOUBLE_EQ(lead.lease_deadline(1), 0.30);
  lead.expire_lease(1, 0.10);  // supersession voids it now
  EXPECT_DOUBLE_EQ(lead.lease_deadline(1), 0.10);
  lead.expire_lease(1, 0.25);  // already expired: no extension
  EXPECT_DOUBLE_EQ(lead.lease_deadline(1), 0.10);
}

// ---------------------------------------------------------------------------
// No false failover: heartbeat loss without a crash must never trigger a
// takeover while losses stay below the suspicion threshold.
// ---------------------------------------------------------------------------

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

TEST(MembershipIntegration, LossPlanBelowThresholdCausesNoFailover) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = SyncMethod::kP3;
  cfg.bandwidth = gbps(1.0);
  cfg.replication = 2;  // arms the plane without any crash
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(30);
  cfg.faults.drop_prob = 0.10;  // PR 1 loss plan: drops beacons too
  cfg.max_sim_time = 60.0;
  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(1, 3);
  cluster.drain();
  // Six consecutive beacons must vanish to cross the threshold; at 10%
  // loss that never happens in this window — and a spurious takeover
  // would desync the run.
  EXPECT_EQ(result.failovers, 0);
  EXPECT_EQ(result.crashes, 0);
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), 4);
  }
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(MembershipIntegration, ShortFlapBelowThresholdCausesNoFailover) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = SyncMethod::kBaseline;
  cfg.bandwidth = gbps(1.0);
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(40);
  // Node 2's NIC goes dark for 20 ms — half the suspicion window.
  cfg.faults.flaps.push_back({2, -1, 0.050, 0.070});
  cfg.faults.flaps.push_back({-1, 2, 0.050, 0.070});
  cfg.max_sim_time = 60.0;
  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(1, 3);
  cluster.drain();
  EXPECT_EQ(result.failovers, 0);
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), 4);
  }
}

// ---------------------------------------------------------------------------
// Losing every replica of a shard group at once is unrecoverable and must
// fail loudly with a well-formed error, not hang.
// ---------------------------------------------------------------------------

TEST(MembershipIntegration, SimultaneousPrimaryAndBackupCrashIsFatal) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = SyncMethod::kP3;
  cfg.bandwidth = gbps(1.0);
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;
  // Group 0 is replicated on servers {0, 1}; kill both, permanently.
  cfg.faults.crashes.push_back({0, 0.05, -1.0});
  cfg.faults.crashes.push_back({1, 0.05, -1.0});
  Cluster cluster(small_workload(), cfg);
  try {
    cluster.run(1, 5);
    FAIL() << "expected shard-loss failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("lost every replica"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace p3::ps
