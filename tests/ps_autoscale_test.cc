// Voluntary drain/leave, weight-aware rebalancing, and the SLO-driven
// autoscaler end to end: a draining node live-migrates its groups out and
// retires without ever reappearing as a contributor or leaseholder
// (PROTOCOL.md invariant 12); a crash mid-drain falls back to the ordinary
// failover path; the autoscaler admits standbys under a tight SLO, drains
// surplus nodes when idle, sheds low-priority pushes when out of capacity —
// all exactly-once, flap-free, and bit-identical across runner threads.
#include "ps/autoscaler.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "model/zoo.h"
#include "ps/cluster.h"
#include "runner/parallel.h"

namespace p3::ps {
namespace {

using core::SyncMethod;

model::Workload small_workload() {
  model::Workload w;
  w.model = model::toy_uniform(4, 120'000);
  w.batch_per_worker = 4;
  w.iter_compute_time = 0.020;
  return w;
}

ClusterConfig drain_config(SyncMethod method) {
  ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.method = method;
  cfg.bandwidth = gbps(1.0);
  cfg.latency = us(25);
  cfg.slice_params = 50'000;
  cfg.replication = 2;
  cfg.heartbeat_period = ms(5);
  cfg.suspicion_timeout = ms(25);
  cfg.max_sim_time = 60.0;  // fail fast if a drain or admission wedges
  return cfg;
}

constexpr SyncMethod kAllMethods[] = {
    SyncMethod::kBaseline, SyncMethod::kSlicingOnly, SyncMethod::kP3,
    SyncMethod::kTensorFlowStyle, SyncMethod::kPoseidonWFBP};

void expect_converged(const Cluster& cluster, int layers,
                      std::int64_t iterations,
                      const std::vector<int>& workers) {
  for (std::int64_t s = 0; s < cluster.partition().num_slices(); ++s) {
    EXPECT_EQ(cluster.slice_version(s), iterations) << "slice " << s;
  }
  for (int w : workers) {
    for (int l = 0; l < layers; ++l) {
      EXPECT_EQ(cluster.worker_layer_version(w, l), iterations)
          << "worker " << w << " layer " << l;
    }
  }
}

/// Invariant 12 audit: the retired node is gone from every live view and
/// leads nothing anywhere.
void expect_retired_everywhere(const Cluster& cluster, int node,
                               int total_nodes, int n_groups) {
  EXPECT_TRUE(cluster.node_retired(node));
  EXPECT_FALSE(cluster.node_draining(node));
  for (int n = 0; n < total_nodes; ++n) {
    if (n == node) continue;
    EXPECT_FALSE(cluster.membership_view(n).joined(node)) << "view " << n;
    for (int g = 0; g < n_groups; ++g) {
      EXPECT_NE(cluster.leadership_view(n).primary(g), node)
          << "view " << n << " group " << g;
    }
  }
}

// ---------------------------------------------------------------------------
// weighted_share: the pure planner kernel.
// ---------------------------------------------------------------------------

TEST(WeightedShare, TakesHottestGroupsUpToFairShare) {
  // Total 16, 4 shares => target 4: group 2 (w=8) alone crosses it.
  const auto plan = weighted_share({2.0, 2.0, 8.0, 4.0}, {0, 1, 2, 3}, 4);
  EXPECT_EQ(plan, (std::vector<int>{2}));
}

TEST(WeightedShare, TwoSharesSplitsWeightNotCount) {
  // Total 16, 2 shares => target 8: group 2 (8) alone reaches it; a
  // count-based planner would have taken two of the four groups.
  const auto plan = weighted_share({2.0, 2.0, 8.0, 4.0}, {0, 1, 2, 3}, 2);
  EXPECT_EQ(plan, (std::vector<int>{2}));
}

TEST(WeightedShare, UniformWeightsDegradeToFairCount) {
  const auto plan = weighted_share({1.0, 1.0, 1.0, 1.0}, {0, 1, 2, 3}, 2);
  EXPECT_EQ(plan, (std::vector<int>{0, 1}));  // ties broken by ascending id
}

TEST(WeightedShare, NeverStripsTheDonorsBare) {
  // One share would mean "take everything"; the donors keep one group.
  const auto plan = weighted_share({1.0, 1.0, 1.0}, {0, 1, 2}, 1);
  EXPECT_EQ(plan.size(), 2u);
}

TEST(WeightedShare, AlwaysTakesAtLeastOneGroup) {
  const auto plan = weighted_share({100.0, 1.0}, {0, 1}, 50);
  EXPECT_EQ(plan, (std::vector<int>{0}));
}

TEST(WeightedShare, EmptyCandidatesYieldEmptyPlan) {
  EXPECT_TRUE(weighted_share({1.0}, {}, 2).empty());
  EXPECT_TRUE(weighted_share({1.0}, {0}, 0).empty());
}

// ---------------------------------------------------------------------------
// Autoscaler policy against a synthetic registry: hysteresis, cooldown,
// violation accounting, stall detection, shed fallback.
// ---------------------------------------------------------------------------

class AutoscalerPolicy : public ::testing::Test {
 protected:
  AutoscalerPolicy()
      : hist_(registry_.histogram("worker.iteration_time_s",
                                  {0.01, 0.05, 0.1, 0.5})) {}

  AutoscalerConfig policy(double slo) {
    AutoscalerConfig cfg;
    cfg.enabled = true;
    cfg.slo_p99_iteration = slo;
    cfg.hysteresis_ticks = 3;
    cfg.cooldown = 0.5;
    cfg.window_ticks = 8;
    return cfg;
  }

  obs::Registry registry_;
  obs::Histogram& hist_;
};

TEST_F(AutoscalerPolicy, HysteresisDelaysTheFirstDecision) {
  Autoscaler as(policy(0.05), &registry_);
  TimeS t = 0.0;
  // Two overloaded ticks: streak below hysteresis, no action yet.
  for (int i = 0; i < 2; ++i) {
    hist_.observe(0.2);
    EXPECT_EQ(as.tick(t, true, false), ScaleAction::kHold) << "tick " << i;
    t += 0.1;
  }
  hist_.observe(0.2);
  EXPECT_EQ(as.tick(t, true, false), ScaleAction::kUp);
  EXPECT_EQ(as.last_decision(), t);
}

TEST_F(AutoscalerPolicy, CooldownForbidsBackToBackDecisions) {
  Autoscaler as(policy(0.05), &registry_);
  TimeS t = 0.0;
  std::vector<TimeS> decisions;
  for (int i = 0; i < 40; ++i) {
    hist_.observe(0.2);  // permanently overloaded
    if (as.tick(t, true, false) != ScaleAction::kHold) {
      decisions.push_back(t);
    }
    t += 0.1;
  }
  ASSERT_GE(decisions.size(), 2u);
  for (std::size_t i = 1; i < decisions.size(); ++i) {
    EXPECT_GE(decisions[i] - decisions[i - 1], 0.5)
        << "decisions " << i - 1 << " and " << i << " flapped";
  }
}

TEST_F(AutoscalerPolicy, ShedsWhenOverloadedWithNothingToAdmit) {
  Autoscaler as(policy(0.05), &registry_);
  TimeS t = 0.0;
  ScaleAction act = ScaleAction::kHold;
  for (int i = 0; i < 5 && act == ScaleAction::kHold; ++i) {
    hist_.observe(0.2);
    act = as.tick(t, /*can_scale_up=*/false, false);
    t += 0.1;
  }
  EXPECT_EQ(act, ScaleAction::kShed);
}

TEST_F(AutoscalerPolicy, ScalesDownAfterSustainedUnderload) {
  Autoscaler as(policy(1.0), &registry_);
  TimeS t = 0.0;
  ScaleAction act = ScaleAction::kHold;
  for (int i = 0; i < 5 && act == ScaleAction::kHold; ++i) {
    hist_.observe(0.005);  // p99 ~ 0.01, far under 0.45 * SLO
    act = as.tick(t, false, /*can_scale_down=*/true);
    t += 0.1;
  }
  EXPECT_EQ(act, ScaleAction::kDown);
}

TEST_F(AutoscalerPolicy, CountsSloViolationTicks) {
  Autoscaler as(policy(0.05), &registry_);
  hist_.observe(0.2);
  as.tick(0.0, false, false);
  hist_.observe(0.2);
  as.tick(0.1, false, false);
  EXPECT_EQ(as.slo_violation_ticks(), 2);
  EXPECT_GT(as.last_p99(), 0.05);
}

TEST_F(AutoscalerPolicy, StallWithNoFreshSamplesReadsAsOverload) {
  Autoscaler as(policy(0.05), &registry_);
  // A genuinely healthy sample (lowest bucket, well under every threshold),
  // then silence — the stall clock, not the lingering sample, must be what
  // reads as overload.
  hist_.observe(0.005);
  as.tick(0.0, true, false);
  ScaleAction act = ScaleAction::kHold;
  TimeS t = 0.1;
  for (int i = 0; i < 10 && act == ScaleAction::kHold; ++i) {
    act = as.tick(t, true, false);  // no new observations: stall clock runs
    t += 0.1;
  }
  EXPECT_TRUE(as.stalled());
  EXPECT_EQ(act, ScaleAction::kUp);
  EXPECT_GT(as.slo_violation_ticks(), 0);
}

TEST_F(AutoscalerPolicy, RejectsMalformedConfigs) {
  auto bad = [&](auto mutate) {
    AutoscalerConfig cfg = policy(0.05);
    mutate(cfg);
    EXPECT_THROW(Autoscaler(cfg, &registry_), std::invalid_argument);
  };
  bad([](AutoscalerConfig& c) { c.slo_p99_iteration = 0.0; });
  bad([](AutoscalerConfig& c) { c.cooldown = 0.0; });
  bad([](AutoscalerConfig& c) { c.hysteresis_ticks = 0; });
  bad([](AutoscalerConfig& c) { c.window_ticks = 0; });
  bad([](AutoscalerConfig& c) { c.downscale_fraction = 0.9; });  // >= up
  bad([](AutoscalerConfig& c) { c.upscale_fraction = 1.5; });
  bad([](AutoscalerConfig& c) { c.standby_nodes = -1; });
}

// ---------------------------------------------------------------------------
// FaultPlan::validate rejects nonsense leave schedules.
// ---------------------------------------------------------------------------

TEST(LeaveValidation, RejectsMalformedLeaves) {
  {
    net::FaultPlan p;
    p.leaves.push_back({-1, 0.1});
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    net::FaultPlan p;
    p.leaves.push_back({1, -0.1});
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    net::FaultPlan p;  // two leaves for one node
    p.leaves.push_back({1, 0.1});
    p.leaves.push_back({1, 0.2});
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(LeaveValidation, RejectsLeaveWhileCrashed) {
  net::FaultPlan p;
  p.crashes.push_back({1, 0.1, 0.5});   // down during [0.1, 0.6)
  p.leaves.push_back({1, 0.3});         // a dead process cannot drain
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // A crash strictly after the drain starts stays legal: that is the
  // drain-x-crash chaos path.
  net::FaultPlan ok;
  ok.crashes.push_back({1, 0.4, 0.5});
  ok.leaves.push_back({1, 0.3});
  EXPECT_NO_THROW(ok.validate(4, 2));
}

TEST(LeaveValidation, RejectsLeaveOfJoinerBeforeItsJoin) {
  net::FaultPlan p;
  p.joins.push_back({4, 0.5});
  p.leaves.push_back({4, 0.2});
  EXPECT_THROW(p.validate(4, 2), std::invalid_argument);
}

TEST(LeaveValidation, RejectsLeaveOfUnknownNode) {
  net::FaultPlan p;
  p.leaves.push_back({7, 0.2});
  EXPECT_THROW(p.validate(4, 2), std::invalid_argument);
}

TEST(LeaveValidation, RejectsDroppingAGroupsLastLiveReplica) {
  // Replication 1, no joiners: node 1's shard group would have nobody left.
  net::FaultPlan p;
  p.leaves.push_back({1, 0.2});
  EXPECT_THROW(p.validate(4, 1), std::invalid_argument);
  // With replication 2 the home chain absorbs the group.
  EXPECT_NO_THROW(p.validate(4, 2));
  // Replication 1 but a joiner exists to absorb it: legal again.
  net::FaultPlan with_join = p;
  with_join.joins.push_back({4, 0.1});
  EXPECT_NO_THROW(with_join.validate(4, 1));
  // Leave + permanent crash covering a whole chain is also rejected.
  net::FaultPlan chain;
  chain.leaves.push_back({1, 0.2});
  chain.crashes.push_back({2, 0.3, -1.0});
  EXPECT_THROW(chain.validate(4, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Tentpole: a planned leave drains the node's groups to a joiner and the
// node retires cleanly — exactly-once, zero dual-primary windows, for every
// sync method.
// ---------------------------------------------------------------------------

class VoluntaryDrain : public ::testing::TestWithParam<SyncMethod> {};

TEST_P(VoluntaryDrain, LeaveMigratesGroupsAndRetiresCleanly) {
  ClusterConfig cfg = drain_config(GetParam());
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.leaves.push_back({1, 0.3});
  cfg.faults.lease_duration = 0.1;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.scale_plane_armed());
  EXPECT_EQ(result.joins, 1);
  EXPECT_EQ(result.drains_started, 1);
  EXPECT_EQ(result.drains_completed, 1);
  EXPECT_EQ(result.crashes, 0);
  EXPECT_EQ(result.failovers, 0);  // the drain is planned, not a failure
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_retired_everywhere(cluster, 1, 5, 4);
  // The survivors and the joiner all reached the target with every slice
  // applied exactly once (a double-applied migrated contribution would
  // overshoot the version vector).
  expect_converged(cluster, 4, iterations, {0, 2, 3, 4});
  EXPECT_TRUE(cluster.simulator().idle());
  EXPECT_EQ(cluster.reliable_in_flight(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, VoluntaryDrain,
                         ::testing::ValuesIn(kAllMethods));

// ---------------------------------------------------------------------------
// Without a joiner, a drained base node's groups fall back to their
// home-chain replicas (the only other legal adopters).
// ---------------------------------------------------------------------------

TEST(VoluntaryDrainChaos, DrainFallsBackToHomeChainReplicas) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.leaves.push_back({1, 0.05});
  cfg.faults.lease_duration = 0.1;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.drains_completed, 1);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_retired_everywhere(cluster, 1, 4, 4);
  // Group 1's home chain is {1, 2}: the group must have landed on 2.
  for (int n = 0; n < 4; ++n) {
    if (n == 1) continue;
    EXPECT_EQ(cluster.leadership_view(n).primary(1), 2) << "view " << n;
  }
  expect_converged(cluster, 4, iterations, {0, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Chaos: a crash mid-drain kills the drain intent with the process; the
// ordinary failover path recovers with zero lost or double-applied
// contributions — and the node, having crashed rather than retired, is
// simply dead (not retired).
// ---------------------------------------------------------------------------

TEST(VoluntaryDrainChaos, CrashMidDrainFallsBackToFailover) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.leaves.push_back({1, 0.05});
  cfg.faults.crashes.push_back({1, 0.06, -1.0});  // dies 10 ms into the drain
  cfg.faults.lease_duration = 0.1;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.drains_started, 1);
  EXPECT_EQ(result.drains_completed, 0);  // the drain never finished
  EXPECT_FALSE(cluster.node_retired(1));
  EXPECT_FALSE(cluster.node_draining(1));
  EXPECT_EQ(result.crashes, 1);
  // Whatever the drain had not yet migrated failed over the normal way.
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_converged(cluster, 4, iterations, {0, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Chaos: a drain concurrent with a partition that severs a worker. The
// severed worker's pushes park; on heal they drain into the post-drain
// leadership exactly once.
// ---------------------------------------------------------------------------

TEST(VoluntaryDrainChaos, DrainDuringPartitionParksThenHealsExactlyOnce) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.joins.push_back({4, 0.05});
  cfg.faults.leaves.push_back({1, 0.35});
  cfg.faults.lease_duration = 0.1;
  net::NetPartition cut;
  cut.side_a = {3};
  cut.side_b = {0, 1, 2, 4};
  cut.start = 0.3;
  cut.heal = 0.7;
  cfg.faults.partitions.push_back(cut);

  Cluster cluster(small_workload(), cfg);
  const int iterations = 8;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_EQ(result.drains_completed, 1);
  EXPECT_GT(result.parked_pushes, 0);  // the severed worker parked pushes
  EXPECT_EQ(result.cross_partition_deliveries, 0);
  EXPECT_EQ(result.dual_primary_windows, 0);
  expect_retired_everywhere(cluster, 1, 5, 4);
  expect_converged(cluster, 4, iterations, {0, 2, 3, 4});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Autoscaler end to end: an unreachable SLO admits the standby after the
// hysteresis window, keeps decisions a cooldown apart (flap-free by audit,
// not just by construction), and falls back to shedding once the standby
// pool is exhausted — all exactly-once.
// ---------------------------------------------------------------------------

TEST(AutoscalerEndToEnd, TightSloAdmitsStandbyThenShedsFlapFree) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.lease_duration = 0.1;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.standby_nodes = 1;
  cfg.autoscaler.slo_p99_iteration = 0.005;  // unreachably tight
  cfg.autoscaler.hysteresis_ticks = 2;
  cfg.autoscaler.cooldown = 0.2;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 10;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_TRUE(cluster.scale_plane_armed());
  EXPECT_EQ(result.joins, 1);  // the standby was admitted
  EXPECT_GE(result.scale_decisions, 2);  // ...then shedding took over
  EXPECT_GT(result.sheds, 0);
  EXPECT_GT(result.slo_violation_ticks, 0);
  ASSERT_GE(result.scale_decision_times.size(), 2u);
  for (std::size_t i = 1; i < result.scale_decision_times.size(); ++i) {
    EXPECT_GE(result.scale_decision_times[i] -
                  result.scale_decision_times[i - 1],
              cfg.autoscaler.cooldown)
        << "decisions " << i - 1 << " and " << i << " flapped";
  }
  EXPECT_EQ(result.dual_primary_windows, 0);
  // Shedding delays contributions, never drops them: exactly-once holds.
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3, 4});
  EXPECT_TRUE(cluster.simulator().idle());
}

TEST(AutoscalerEndToEnd, LooseSloDrainsTheSurplusJoiner) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.joins.push_back({4, 0.05});  // surplus capacity from the start
  cfg.faults.lease_duration = 0.1;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.standby_nodes = 0;
  cfg.autoscaler.slo_p99_iteration = 30.0;  // nothing ever violates it
  cfg.autoscaler.hysteresis_ticks = 2;
  cfg.autoscaler.cooldown = 0.2;

  Cluster cluster(small_workload(), cfg);
  const int iterations = 10;
  const auto result = cluster.run(1, iterations - 1);
  cluster.drain();

  EXPECT_GE(result.scale_decisions, 1);
  EXPECT_EQ(result.drains_started, 1);
  EXPECT_EQ(result.drains_completed, 1);
  EXPECT_EQ(result.slo_violation_ticks, 0);
  expect_retired_everywhere(cluster, 4, 5, 4);
  expect_converged(cluster, 4, iterations, {0, 1, 2, 3});
  EXPECT_TRUE(cluster.simulator().idle());
}

// ---------------------------------------------------------------------------
// Satellite (f) guard: with no leaves and no autoscaler the scale plane
// stays dark — no scale metrics registered, no drain state, zero result
// deltas from the plane.
// ---------------------------------------------------------------------------

TEST(ScalePlane, StaysInertWithoutLeavesOrAutoscaler) {
  ClusterConfig cfg = drain_config(SyncMethod::kP3);
  cfg.faults.joins.push_back({4, 0.05});  // elastic join alone: no plane
  Cluster cluster(small_workload(), cfg);
  const auto result = cluster.run(1, 5);
  cluster.drain();
  EXPECT_FALSE(cluster.scale_plane_armed());
  EXPECT_EQ(cluster.metrics().find_counter("scale.drains_started"), nullptr);
  EXPECT_EQ(cluster.metrics().find_counter("scale.decisions"), nullptr);
  EXPECT_EQ(result.drains_started, 0);
  EXPECT_EQ(result.scale_decisions, 0);
  EXPECT_EQ(result.sheds, 0);
  EXPECT_TRUE(result.scale_decision_times.empty());
}

// ---------------------------------------------------------------------------
// Config validation: the scale plane is colocated-only and does not compose
// with rack aggregation; standby admission needs a flat topology.
// ---------------------------------------------------------------------------

TEST(ScalePlane, RejectsUnsupportedDeployments) {
  {
    ClusterConfig cfg = drain_config(SyncMethod::kP3);
    cfg.dedicated_servers = true;
    cfg.faults.leaves.push_back({1, 0.1});
    EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
  }
  {
    ClusterConfig cfg = drain_config(SyncMethod::kP3);
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.slo_p99_iteration = 0.1;
    cfg.autoscaler.standby_nodes = 1;
    cfg.topology.racks = {{0, 1}, {2, 3}};
    EXPECT_THROW(Cluster(small_workload(), cfg), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Determinism: autoscaled and draining runs are bit-identical at 1, 2 and
// 4 runner threads — the scale plane introduces no cross-run state.
// ---------------------------------------------------------------------------

TEST(ScalePlane, AutoscaledRunsBitIdenticalAcrossRunnerThreads) {
  struct Point {
    SyncMethod method;
    bool autoscale;
    bool leave;
  };
  const std::vector<Point> grid = {
      {SyncMethod::kP3, true, false},
      {SyncMethod::kBaseline, true, false},
      {SyncMethod::kP3, false, true},
      {SyncMethod::kPoseidonWFBP, false, true},
  };
  const auto run_point = [](const Point& p) {
    ClusterConfig cfg = drain_config(p.method);
    cfg.faults.lease_duration = 0.1;
    if (p.autoscale) {
      cfg.autoscaler.enabled = true;
      cfg.autoscaler.standby_nodes = 1;
      cfg.autoscaler.slo_p99_iteration = 0.005;
      cfg.autoscaler.hysteresis_ticks = 2;
      cfg.autoscaler.cooldown = 0.2;
    } else {
      cfg.faults.joins.push_back({4, 0.05});
      cfg.faults.leaves.push_back({1, 0.3});
    }
    Cluster cluster(small_workload(), cfg);
    auto r = cluster.run(1, 5);
    cluster.drain();
    return r;
  };
  std::vector<std::vector<RunResult>> by_threads;
  for (const int threads : {1, 2, 4}) {
    runner::ParallelExecutor pool(threads);
    std::vector<std::function<RunResult()>> jobs;
    for (const auto& p : grid) {
      jobs.push_back([=] { return run_point(p); });
    }
    by_threads.push_back(pool.map(std::move(jobs)));
  }
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const RunResult& a = by_threads[0][i];
      const RunResult& b = by_threads[t][i];
      EXPECT_EQ(a.throughput, b.throughput) << "point " << i;
      EXPECT_EQ(a.total_time, b.total_time) << "point " << i;
      EXPECT_EQ(a.wire_bytes, b.wire_bytes) << "point " << i;
      EXPECT_EQ(a.goodput_bytes, b.goodput_bytes) << "point " << i;
      EXPECT_EQ(a.joins, b.joins) << "point " << i;
      EXPECT_EQ(a.migrations, b.migrations) << "point " << i;
      EXPECT_EQ(a.migrated_bytes, b.migrated_bytes) << "point " << i;
      EXPECT_EQ(a.drains_started, b.drains_started) << "point " << i;
      EXPECT_EQ(a.drains_completed, b.drains_completed) << "point " << i;
      EXPECT_EQ(a.scale_decisions, b.scale_decisions) << "point " << i;
      EXPECT_EQ(a.sheds, b.sheds) << "point " << i;
      EXPECT_EQ(a.slo_violation_ticks, b.slo_violation_ticks)
          << "point " << i;
      EXPECT_EQ(a.scale_decision_times, b.scale_decision_times)
          << "point " << i;
      EXPECT_EQ(a.dual_primary_windows, b.dual_primary_windows)
          << "point " << i;
    }
  }
}

}  // namespace
}  // namespace p3::ps
