// Quickstart: compare the MXNet-style baseline against P3 on one workload.
//
//   $ ./quickstart [--model resnet50|inception|vgg19|sockeye]
//                  [--bandwidth <Gbps>] [--workers <n>]
//
// Walks through the three public-API steps every experiment uses:
//   1. pick a workload (model + calibrated compute budget),
//   2. configure a cluster (size, bandwidth, synchronization method),
//   3. run and read the throughput.
#include <cstdio>
#include <string>

#include "common/options.h"
#include "model/zoo.h"
#include "ps/cluster.h"

using namespace p3;

namespace {

model::Workload pick_workload(const std::string& name) {
  if (name == "resnet50") return model::workload_resnet50();
  if (name == "inception") return model::workload_inception_v3();
  if (name == "vgg19") return model::workload_vgg19();
  if (name == "sockeye") return model::workload_sockeye();
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv,
               {{"model", "vgg19"}, {"bandwidth", "15"}, {"workers", "4"}});
  const auto workload = pick_workload(opts.str("model"));
  const double bandwidth = opts.num("bandwidth");
  const int workers = static_cast<int>(opts.integer("workers"));

  std::printf("model %s: %.1fM parameters (%.0f MB of gradients per "
              "iteration per worker)\n",
              workload.model.name.c_str(),
              static_cast<double>(workload.model.total_params()) / 1e6,
              static_cast<double>(workload.model.total_bytes()) / 1e6);
  std::printf("cluster: %d workers, %0.f Gbps egress per NIC\n\n", workers,
              bandwidth);

  // Step 2-3: one cluster per synchronization method; run() reports
  // steady-state training throughput.
  double base_tp = 0.0;
  for (auto method : {core::SyncMethod::kBaseline, core::SyncMethod::kP3}) {
    ps::ClusterConfig cfg;
    cfg.n_workers = workers;
    cfg.method = method;
    cfg.bandwidth = gbps(bandwidth);
    cfg.rx_bandwidth = gbps(100);  // tc-style egress shaping

    ps::Cluster cluster(workload, cfg);
    const auto result = cluster.run(/*warmup=*/3, /*measured=*/10);
    std::printf("%-10s %8.1f %s/s   (iteration %.0f ms)\n",
                core::sync_method_name(method).c_str(), result.throughput,
                workload.model.sample_unit.c_str(),
                1e3 * result.mean_iteration_time);
    if (method == core::SyncMethod::kBaseline) {
      base_tp = result.throughput;
    } else {
      std::printf("\nP3 speedup over baseline: %.0f%%\n",
                  100.0 * (result.throughput / base_tp - 1.0));
    }
  }
  return 0;
}
