// Scenario: should you compress gradients, or schedule them better?
//
// Uses the numeric training substrate to make the paper's Section 5.6
// argument concrete: DGC-style top-k compression buys bandwidth at the cost
// of fidelity, while P3 (full-gradient sync) preserves the exact SGD
// trajectory. Trains the same task under full sync and three DGC sparsity
// levels and reports final validation accuracy next to the bytes each
// method puts on the wire.
#include <cstdio>
#include <tuple>
#include <vector>

#include "train/trainer.h"

using namespace p3;

int main() {
  train::MixtureConfig mix;
  mix.noise = 1.6;
  const auto data = train::make_gaussian_mixture(mix);

  auto base_cfg = [] {
    train::TrainerConfig cfg;
    cfg.n_workers = 4;
    cfg.batch_per_worker = 32;
    cfg.epochs = 60;
    cfg.hidden = {48, 48};
    cfg.sgd.lr = 0.1;
    cfg.sgd.momentum = 0.9;
    cfg.sgd.decay_epochs = {30, 45};
    cfg.seed = 11;
    return cfg;
  };

  std::printf("task: 10-class Gaussian mixture, MLP 32-48-48-10, 4 workers, "
              "60 epochs\n\n");
  std::printf("%-22s %12s %16s\n", "method", "final acc", "bytes/iteration");

  {
    train::TrainerConfig cfg = base_cfg();
    train::ParallelTrainer trainer(data, cfg);
    const auto stats = trainer.train();
    const double dense_bytes =
        4.0 * static_cast<double>(trainer.model().total_params());
    std::printf("%-22s %11.2f%% %15.0f\n", "full sync (P3)",
                100.0 * stats.back().val_accuracy, dense_bytes);
  }

  for (auto [mode, label, bits] :
       std::initializer_list<std::tuple<train::AggregationMode, const char*,
                                        double>>{
           {train::AggregationMode::kQsgd, "QSGD (4 levels)", 3.32},
           {train::AggregationMode::kOneBit, "1-bit SGD", 1.0}}) {
    train::TrainerConfig cfg = base_cfg();
    cfg.mode = mode;
    cfg.qsgd_levels = 4;
    train::ParallelTrainer trainer(data, cfg);
    const auto stats = trainer.train();
    const double bytes =
        bits / 8.0 * static_cast<double>(trainer.model().total_params());
    std::printf("%-22s %11.2f%% %15.0f\n", label,
                100.0 * stats.back().val_accuracy, bytes);
  }

  for (double sparsity : {0.9, 0.99, 0.999}) {
    train::TrainerConfig cfg = base_cfg();
    cfg.mode = train::AggregationMode::kDgc;
    cfg.dgc.sparsity = sparsity;
    cfg.dgc.momentum = cfg.sgd.momentum;
    cfg.dgc.warmup_epochs = 4;
    train::ParallelTrainer trainer(data, cfg);
    const auto stats = trainer.train();
    // Sparse encoding: ~8 bytes per transmitted entry (index + value).
    const double entries =
        (1.0 - sparsity) * static_cast<double>(trainer.model().total_params());
    char label[64];
    std::snprintf(label, sizeof(label), "DGC %.1f%% sparsity",
                  100.0 * sparsity);
    std::printf("%-22s %11.2f%% %15.0f\n", label,
                100.0 * stats.back().val_accuracy, 8.0 * entries);
  }

  std::printf(
      "\nthe trade: compression shrinks traffic by orders of magnitude but "
      "perturbs the\ntrajectory; P3 sends every byte yet hides the cost by "
      "scheduling, so accuracy\nis untouched — and the two approaches "
      "compose.\n");
  return 0;
}
