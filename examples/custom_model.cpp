// Scenario: you are bringing your *own* model to a bandwidth-constrained
// cluster and want to know (a) whether P3 helps and (b) what slice size to
// configure.
//
// The model here is a small recommendation ranker: two enormous embedding
// tables at the front (the Sockeye-like worst case: generated last in the
// backward pass, needed first in the forward pass), then a cheap MLP tower.
#include <cstdio>

#include "model/compute.h"
#include "model/zoo.h"
#include "runner/experiment.h"

using namespace p3;

namespace {

model::Workload make_ranker() {
  // Layer parameter counts: user embedding 12M, item embedding 8M, then a
  // 4-layer MLP tower. FLOPs: embeddings are lookups (cheap), tower is
  // dense compute.
  model::Workload w;
  w.model = model::toy_custom(
      {12'000'000, 8'000'000, 1'024 * 512, 512 * 256, 256 * 128, 128},
      {1.0, 1.0, 600.0, 150.0, 40.0, 1.0});
  w.model.name = "ranker";
  w.model.sample_unit = "requests";
  w.batch_per_worker = 64;
  w.iter_compute_time = 0.18;
  return w;
}

}  // namespace

int main() {
  const auto workload = make_ranker();
  std::printf("custom model '%s': %.1fM params, heaviest layer %.0f%% of "
              "the model and it is layer %d of %d\n\n",
              workload.model.name.c_str(),
              static_cast<double>(workload.model.total_params()) / 1e6,
              100.0 * workload.model.heaviest_fraction(),
              workload.model.heaviest_layer() + 1,
              workload.model.num_layers());

  ps::ClusterConfig cfg;
  cfg.n_workers = 4;
  cfg.bandwidth = gbps(5);
  cfg.rx_bandwidth = gbps(100);

  // (a) does P3 help at 5 Gbps?
  std::printf("throughput at 5 Gbps, 4 workers:\n");
  for (auto method :
       {core::SyncMethod::kBaseline, core::SyncMethod::kSlicingOnly,
        core::SyncMethod::kP3}) {
    cfg.method = method;
    const double tp = runner::measure_throughput(workload, cfg);
    std::printf("  %-10s %8.1f requests/s\n",
                core::sync_method_name(method).c_str(), tp);
  }

  // (b) which slice size?
  std::printf("\nP3 slice-size sweep:\n");
  const auto sweep = runner::slice_size_sweep(
      workload, cfg, {5'000, 20'000, 50'000, 200'000, 1'000'000});
  std::size_t best = 0;
  for (std::size_t i = 0; i < sweep.x.size(); ++i) {
    std::printf("  %9.0f params/slice -> %8.1f requests/s\n", sweep.x[i],
                sweep.y[i]);
    if (sweep.y[i] > sweep.y[best]) best = i;
  }
  std::printf("\nrecommended slice size: %.0f parameters\n", sweep.x[best]);
  return 0;
}
