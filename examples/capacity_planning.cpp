// Scenario: capacity planning for a shared GPU cluster.
//
// The paper's motivation: cloud tenants rarely see the NIC's line rate —
// effective bandwidth on a shared fabric is a fraction of capacity. Given a
// model and a target scaling efficiency, what is the minimum effective
// bandwidth each synchronization method needs? And how does each method
// degrade when a congestion event halves the available bandwidth?
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "runner/experiment.h"

using namespace p3;

namespace {

/// Smallest bandwidth (by bisection over a grid) at which `method` keeps at
/// least `efficiency` of the compute-bound throughput. Returns a negative
/// value if even the top of the search range cannot reach it.
double min_bandwidth_for(const model::Workload& w, core::SyncMethod method,
                         double efficiency) {
  const double ideal =
      4.0 * w.batch_per_worker / w.iter_compute_time;  // 4 workers
  constexpr double kMaxBandwidth = 64.0;
  double lo = 0.25, hi = kMaxBandwidth;
  bool reachable = false;
  for (int step = 0; step < 12; ++step) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    ps::ClusterConfig cfg;
    cfg.n_workers = 4;
    cfg.method = method;
    cfg.bandwidth = gbps(mid);
    cfg.rx_bandwidth = gbps(100);
    runner::MeasureOptions opts;
    opts.warmup = 2;
    opts.measured = 6;
    const double tp = runner::measure_throughput(w, cfg, opts);
    if (tp >= efficiency * ideal) {
      hi = mid;
      reachable = true;
    } else {
      lo = mid;
    }
  }
  return reachable ? hi : -kMaxBandwidth;
}

}  // namespace

int main() {
  std::printf("== capacity planning: minimum bandwidth for 90%% scaling "
              "efficiency (4 workers) ==\n\n");
  struct Row {
    const char* name;
    model::Workload workload;
  };
  std::vector<Row> rows = {{"ResNet-50", model::workload_resnet50()},
                           {"VGG-19", model::workload_vgg19()},
                           {"Sockeye", model::workload_sockeye()}};

  std::printf("%-10s %18s %18s %10s\n", "model", "Baseline needs",
              "P3 needs", "saving");
  for (auto& row : rows) {
    const double need_base =
        min_bandwidth_for(row.workload, core::SyncMethod::kBaseline, 0.90);
    const double need_p3 =
        min_bandwidth_for(row.workload, core::SyncMethod::kP3, 0.90);
    auto cell = [](double v) {
      char buf[32];
      if (v < 0) {
        std::snprintf(buf, sizeof(buf), ">%.0f Gbps", -v);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f Gbps", v);
      }
      return std::string(buf);
    };
    if (need_base > 0 && need_p3 > 0) {
      std::printf("%-10s %15s %15s %9.0f%%\n", row.name,
                  cell(need_base).c_str(), cell(need_p3).c_str(),
                  100.0 * (1.0 - need_p3 / need_base));
    } else {
      std::printf("%-10s %15s %15s %9s\n", row.name, cell(need_base).c_str(),
                  cell(need_p3).c_str(), "-");
    }
  }

  std::printf("\n== congestion event: bandwidth halves mid-capacity ==\n\n");
  const auto w = model::workload_vgg19();
  for (double bw : {20.0, 10.0}) {
    for (auto method : {core::SyncMethod::kBaseline, core::SyncMethod::kP3}) {
      ps::ClusterConfig cfg;
      cfg.n_workers = 4;
      cfg.method = method;
      cfg.bandwidth = gbps(bw);
      cfg.rx_bandwidth = gbps(100);
      const double tp = runner::measure_throughput(w, cfg);
      std::printf("VGG-19 @ %4.0f Gbps  %-10s %8.1f images/s\n", bw,
                  core::sync_method_name(method).c_str(), tp);
    }
  }
  std::printf("\nP3's lower peak-bandwidth demand is exactly the property "
              "the paper argues makes it suited to shared clusters.\n");
  return 0;
}
