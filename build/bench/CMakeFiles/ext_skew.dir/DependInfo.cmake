
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_skew.cc" "bench/CMakeFiles/ext_skew.dir/ext_skew.cc.o" "gcc" "bench/CMakeFiles/ext_skew.dir/ext_skew.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/allreduce/CMakeFiles/p3_allreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/p3_train.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/p3_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/p3_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/p3_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/p3_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
