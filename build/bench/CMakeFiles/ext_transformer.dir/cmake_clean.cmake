file(REMOVE_RECURSE
  "CMakeFiles/ext_transformer.dir/ext_transformer.cc.o"
  "CMakeFiles/ext_transformer.dir/ext_transformer.cc.o.d"
  "ext_transformer"
  "ext_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
