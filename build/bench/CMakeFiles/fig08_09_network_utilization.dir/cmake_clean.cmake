file(REMOVE_RECURSE
  "CMakeFiles/fig08_09_network_utilization.dir/fig08_09_network_utilization.cc.o"
  "CMakeFiles/fig08_09_network_utilization.dir/fig08_09_network_utilization.cc.o.d"
  "fig08_09_network_utilization"
  "fig08_09_network_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_09_network_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
