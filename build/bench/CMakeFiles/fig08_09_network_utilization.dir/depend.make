# Empty dependencies file for fig08_09_network_utilization.
# This may be replaced when dependencies are built.
