file(REMOVE_RECURSE
  "CMakeFiles/ablation_p3_components.dir/ablation_p3_components.cc.o"
  "CMakeFiles/ablation_p3_components.dir/ablation_p3_components.cc.o.d"
  "ablation_p3_components"
  "ablation_p3_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p3_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
