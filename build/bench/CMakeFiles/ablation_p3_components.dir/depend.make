# Empty dependencies file for ablation_p3_components.
# This may be replaced when dependencies are built.
