# Empty compiler generated dependencies file for fig06_granularity.
# This may be replaced when dependencies are built.
