file(REMOVE_RECURSE
  "CMakeFiles/fig06_granularity.dir/fig06_granularity.cc.o"
  "CMakeFiles/fig06_granularity.dir/fig06_granularity.cc.o.d"
  "fig06_granularity"
  "fig06_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
