# Empty compiler generated dependencies file for fig05_param_distribution.
# This may be replaced when dependencies are built.
