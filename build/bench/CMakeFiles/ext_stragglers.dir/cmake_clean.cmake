file(REMOVE_RECURSE
  "CMakeFiles/ext_stragglers.dir/ext_stragglers.cc.o"
  "CMakeFiles/ext_stragglers.dir/ext_stragglers.cc.o.d"
  "ext_stragglers"
  "ext_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
