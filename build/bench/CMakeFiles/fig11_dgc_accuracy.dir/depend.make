# Empty dependencies file for fig11_dgc_accuracy.
# This may be replaced when dependencies are built.
