# Empty dependencies file for fig12_slice_size.
# This may be replaced when dependencies are built.
