file(REMOVE_RECURSE
  "CMakeFiles/fig12_slice_size.dir/fig12_slice_size.cc.o"
  "CMakeFiles/fig12_slice_size.dir/fig12_slice_size.cc.o.d"
  "fig12_slice_size"
  "fig12_slice_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_slice_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
