file(REMOVE_RECURSE
  "CMakeFiles/fig15_asgd_accuracy.dir/fig15_asgd_accuracy.cc.o"
  "CMakeFiles/fig15_asgd_accuracy.dir/fig15_asgd_accuracy.cc.o.d"
  "fig15_asgd_accuracy"
  "fig15_asgd_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_asgd_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
