file(REMOVE_RECURSE
  "CMakeFiles/ext_compression.dir/ext_compression.cc.o"
  "CMakeFiles/ext_compression.dir/ext_compression.cc.o.d"
  "ext_compression"
  "ext_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
