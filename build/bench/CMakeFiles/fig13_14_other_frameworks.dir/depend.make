# Empty dependencies file for fig13_14_other_frameworks.
# This may be replaced when dependencies are built.
