file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_other_frameworks.dir/fig13_14_other_frameworks.cc.o"
  "CMakeFiles/fig13_14_other_frameworks.dir/fig13_14_other_frameworks.cc.o.d"
  "fig13_14_other_frameworks"
  "fig13_14_other_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_other_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
