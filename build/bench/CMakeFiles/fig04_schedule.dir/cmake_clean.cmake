file(REMOVE_RECURSE
  "CMakeFiles/fig04_schedule.dir/fig04_schedule.cc.o"
  "CMakeFiles/fig04_schedule.dir/fig04_schedule.cc.o.d"
  "fig04_schedule"
  "fig04_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
