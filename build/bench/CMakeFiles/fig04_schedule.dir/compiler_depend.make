# Empty compiler generated dependencies file for fig04_schedule.
# This may be replaced when dependencies are built.
