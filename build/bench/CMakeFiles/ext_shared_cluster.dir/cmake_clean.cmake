file(REMOVE_RECURSE
  "CMakeFiles/ext_shared_cluster.dir/ext_shared_cluster.cc.o"
  "CMakeFiles/ext_shared_cluster.dir/ext_shared_cluster.cc.o.d"
  "ext_shared_cluster"
  "ext_shared_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_shared_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
