# Empty dependencies file for ext_shared_cluster.
# This may be replaced when dependencies are built.
