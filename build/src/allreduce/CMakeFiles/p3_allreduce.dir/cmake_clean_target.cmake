file(REMOVE_RECURSE
  "libp3_allreduce.a"
)
