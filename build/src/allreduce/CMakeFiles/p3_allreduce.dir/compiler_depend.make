# Empty compiler generated dependencies file for p3_allreduce.
# This may be replaced when dependencies are built.
