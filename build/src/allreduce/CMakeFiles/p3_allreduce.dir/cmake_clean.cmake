file(REMOVE_RECURSE
  "CMakeFiles/p3_allreduce.dir/ring.cc.o"
  "CMakeFiles/p3_allreduce.dir/ring.cc.o.d"
  "libp3_allreduce.a"
  "libp3_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
