# Empty dependencies file for p3_trace.
# This may be replaced when dependencies are built.
