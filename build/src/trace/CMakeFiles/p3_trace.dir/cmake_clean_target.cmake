file(REMOVE_RECURSE
  "libp3_trace.a"
)
