file(REMOVE_RECURSE
  "CMakeFiles/p3_trace.dir/timeline.cc.o"
  "CMakeFiles/p3_trace.dir/timeline.cc.o.d"
  "libp3_trace.a"
  "libp3_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
