# Empty compiler generated dependencies file for p3_train.
# This may be replaced when dependencies are built.
