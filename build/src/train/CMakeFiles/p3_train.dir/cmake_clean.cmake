file(REMOVE_RECURSE
  "CMakeFiles/p3_train.dir/data.cc.o"
  "CMakeFiles/p3_train.dir/data.cc.o.d"
  "CMakeFiles/p3_train.dir/dgc.cc.o"
  "CMakeFiles/p3_train.dir/dgc.cc.o.d"
  "CMakeFiles/p3_train.dir/mlp.cc.o"
  "CMakeFiles/p3_train.dir/mlp.cc.o.d"
  "CMakeFiles/p3_train.dir/quantize.cc.o"
  "CMakeFiles/p3_train.dir/quantize.cc.o.d"
  "CMakeFiles/p3_train.dir/sgd.cc.o"
  "CMakeFiles/p3_train.dir/sgd.cc.o.d"
  "CMakeFiles/p3_train.dir/tensor.cc.o"
  "CMakeFiles/p3_train.dir/tensor.cc.o.d"
  "CMakeFiles/p3_train.dir/trainer.cc.o"
  "CMakeFiles/p3_train.dir/trainer.cc.o.d"
  "libp3_train.a"
  "libp3_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
