
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/data.cc" "src/train/CMakeFiles/p3_train.dir/data.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/data.cc.o.d"
  "/root/repo/src/train/dgc.cc" "src/train/CMakeFiles/p3_train.dir/dgc.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/dgc.cc.o.d"
  "/root/repo/src/train/mlp.cc" "src/train/CMakeFiles/p3_train.dir/mlp.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/mlp.cc.o.d"
  "/root/repo/src/train/quantize.cc" "src/train/CMakeFiles/p3_train.dir/quantize.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/quantize.cc.o.d"
  "/root/repo/src/train/sgd.cc" "src/train/CMakeFiles/p3_train.dir/sgd.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/sgd.cc.o.d"
  "/root/repo/src/train/tensor.cc" "src/train/CMakeFiles/p3_train.dir/tensor.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/tensor.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/p3_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/p3_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
