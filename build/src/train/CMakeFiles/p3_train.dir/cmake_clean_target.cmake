file(REMOVE_RECURSE
  "libp3_train.a"
)
