file(REMOVE_RECURSE
  "CMakeFiles/p3_ps.dir/cluster.cc.o"
  "CMakeFiles/p3_ps.dir/cluster.cc.o.d"
  "libp3_ps.a"
  "libp3_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
