file(REMOVE_RECURSE
  "libp3_ps.a"
)
