# Empty dependencies file for p3_ps.
# This may be replaced when dependencies are built.
