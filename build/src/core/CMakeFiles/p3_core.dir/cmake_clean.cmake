file(REMOVE_RECURSE
  "CMakeFiles/p3_core.dir/slicing.cc.o"
  "CMakeFiles/p3_core.dir/slicing.cc.o.d"
  "CMakeFiles/p3_core.dir/sync_method.cc.o"
  "CMakeFiles/p3_core.dir/sync_method.cc.o.d"
  "libp3_core.a"
  "libp3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
