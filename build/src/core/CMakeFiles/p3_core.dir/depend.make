# Empty dependencies file for p3_core.
# This may be replaced when dependencies are built.
