
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/slicing.cc" "src/core/CMakeFiles/p3_core.dir/slicing.cc.o" "gcc" "src/core/CMakeFiles/p3_core.dir/slicing.cc.o.d"
  "/root/repo/src/core/sync_method.cc" "src/core/CMakeFiles/p3_core.dir/sync_method.cc.o" "gcc" "src/core/CMakeFiles/p3_core.dir/sync_method.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/p3_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
