file(REMOVE_RECURSE
  "libp3_core.a"
)
