file(REMOVE_RECURSE
  "CMakeFiles/p3_net.dir/monitor.cc.o"
  "CMakeFiles/p3_net.dir/monitor.cc.o.d"
  "CMakeFiles/p3_net.dir/network.cc.o"
  "CMakeFiles/p3_net.dir/network.cc.o.d"
  "libp3_net.a"
  "libp3_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
