file(REMOVE_RECURSE
  "libp3_net.a"
)
