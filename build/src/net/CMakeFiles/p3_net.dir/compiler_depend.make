# Empty compiler generated dependencies file for p3_net.
# This may be replaced when dependencies are built.
