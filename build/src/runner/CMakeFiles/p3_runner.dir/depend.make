# Empty dependencies file for p3_runner.
# This may be replaced when dependencies are built.
