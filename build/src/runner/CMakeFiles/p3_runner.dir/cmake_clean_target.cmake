file(REMOVE_RECURSE
  "libp3_runner.a"
)
