file(REMOVE_RECURSE
  "CMakeFiles/p3_runner.dir/experiment.cc.o"
  "CMakeFiles/p3_runner.dir/experiment.cc.o.d"
  "libp3_runner.a"
  "libp3_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
