# Empty dependencies file for p3_sim.
# This may be replaced when dependencies are built.
