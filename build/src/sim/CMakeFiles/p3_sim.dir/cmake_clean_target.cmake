file(REMOVE_RECURSE
  "libp3_sim.a"
)
