file(REMOVE_RECURSE
  "CMakeFiles/p3_sim.dir/simulator.cc.o"
  "CMakeFiles/p3_sim.dir/simulator.cc.o.d"
  "libp3_sim.a"
  "libp3_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
