file(REMOVE_RECURSE
  "CMakeFiles/p3_common.dir/csv.cc.o"
  "CMakeFiles/p3_common.dir/csv.cc.o.d"
  "CMakeFiles/p3_common.dir/log.cc.o"
  "CMakeFiles/p3_common.dir/log.cc.o.d"
  "CMakeFiles/p3_common.dir/options.cc.o"
  "CMakeFiles/p3_common.dir/options.cc.o.d"
  "CMakeFiles/p3_common.dir/rng.cc.o"
  "CMakeFiles/p3_common.dir/rng.cc.o.d"
  "CMakeFiles/p3_common.dir/stats.cc.o"
  "CMakeFiles/p3_common.dir/stats.cc.o.d"
  "CMakeFiles/p3_common.dir/table.cc.o"
  "CMakeFiles/p3_common.dir/table.cc.o.d"
  "CMakeFiles/p3_common.dir/units.cc.o"
  "CMakeFiles/p3_common.dir/units.cc.o.d"
  "libp3_common.a"
  "libp3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
