file(REMOVE_RECURSE
  "libp3_common.a"
)
