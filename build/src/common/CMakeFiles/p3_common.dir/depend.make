# Empty dependencies file for p3_common.
# This may be replaced when dependencies are built.
