# Empty compiler generated dependencies file for p3_model.
# This may be replaced when dependencies are built.
