
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/compute.cc" "src/model/CMakeFiles/p3_model.dir/compute.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/compute.cc.o.d"
  "/root/repo/src/model/model.cc" "src/model/CMakeFiles/p3_model.dir/model.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/model.cc.o.d"
  "/root/repo/src/model/zoo_alexnet.cc" "src/model/CMakeFiles/p3_model.dir/zoo_alexnet.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_alexnet.cc.o.d"
  "/root/repo/src/model/zoo_inception.cc" "src/model/CMakeFiles/p3_model.dir/zoo_inception.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_inception.cc.o.d"
  "/root/repo/src/model/zoo_resnet.cc" "src/model/CMakeFiles/p3_model.dir/zoo_resnet.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_resnet.cc.o.d"
  "/root/repo/src/model/zoo_sockeye.cc" "src/model/CMakeFiles/p3_model.dir/zoo_sockeye.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_sockeye.cc.o.d"
  "/root/repo/src/model/zoo_toy.cc" "src/model/CMakeFiles/p3_model.dir/zoo_toy.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_toy.cc.o.d"
  "/root/repo/src/model/zoo_transformer.cc" "src/model/CMakeFiles/p3_model.dir/zoo_transformer.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_transformer.cc.o.d"
  "/root/repo/src/model/zoo_vgg.cc" "src/model/CMakeFiles/p3_model.dir/zoo_vgg.cc.o" "gcc" "src/model/CMakeFiles/p3_model.dir/zoo_vgg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
