file(REMOVE_RECURSE
  "libp3_model.a"
)
