file(REMOVE_RECURSE
  "CMakeFiles/p3_model.dir/compute.cc.o"
  "CMakeFiles/p3_model.dir/compute.cc.o.d"
  "CMakeFiles/p3_model.dir/model.cc.o"
  "CMakeFiles/p3_model.dir/model.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_alexnet.cc.o"
  "CMakeFiles/p3_model.dir/zoo_alexnet.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_inception.cc.o"
  "CMakeFiles/p3_model.dir/zoo_inception.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_resnet.cc.o"
  "CMakeFiles/p3_model.dir/zoo_resnet.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_sockeye.cc.o"
  "CMakeFiles/p3_model.dir/zoo_sockeye.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_toy.cc.o"
  "CMakeFiles/p3_model.dir/zoo_toy.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_transformer.cc.o"
  "CMakeFiles/p3_model.dir/zoo_transformer.cc.o.d"
  "CMakeFiles/p3_model.dir/zoo_vgg.cc.o"
  "CMakeFiles/p3_model.dir/zoo_vgg.cc.o.d"
  "libp3_model.a"
  "libp3_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
