file(REMOVE_RECURSE
  "CMakeFiles/train_data_test.dir/train_data_test.cc.o"
  "CMakeFiles/train_data_test.dir/train_data_test.cc.o.d"
  "train_data_test"
  "train_data_test.pdb"
  "train_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
