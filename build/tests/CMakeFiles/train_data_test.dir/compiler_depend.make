# Empty compiler generated dependencies file for train_data_test.
# This may be replaced when dependencies are built.
