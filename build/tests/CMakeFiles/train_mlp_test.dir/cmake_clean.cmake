file(REMOVE_RECURSE
  "CMakeFiles/train_mlp_test.dir/train_mlp_test.cc.o"
  "CMakeFiles/train_mlp_test.dir/train_mlp_test.cc.o.d"
  "train_mlp_test"
  "train_mlp_test.pdb"
  "train_mlp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
