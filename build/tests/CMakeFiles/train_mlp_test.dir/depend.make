# Empty dependencies file for train_mlp_test.
# This may be replaced when dependencies are built.
