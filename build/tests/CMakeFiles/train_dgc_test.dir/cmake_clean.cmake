file(REMOVE_RECURSE
  "CMakeFiles/train_dgc_test.dir/train_dgc_test.cc.o"
  "CMakeFiles/train_dgc_test.dir/train_dgc_test.cc.o.d"
  "train_dgc_test"
  "train_dgc_test.pdb"
  "train_dgc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_dgc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
