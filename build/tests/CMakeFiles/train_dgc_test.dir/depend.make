# Empty dependencies file for train_dgc_test.
# This may be replaced when dependencies are built.
