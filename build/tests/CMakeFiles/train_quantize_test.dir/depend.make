# Empty dependencies file for train_quantize_test.
# This may be replaced when dependencies are built.
