file(REMOVE_RECURSE
  "CMakeFiles/train_quantize_test.dir/train_quantize_test.cc.o"
  "CMakeFiles/train_quantize_test.dir/train_quantize_test.cc.o.d"
  "train_quantize_test"
  "train_quantize_test.pdb"
  "train_quantize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_quantize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
