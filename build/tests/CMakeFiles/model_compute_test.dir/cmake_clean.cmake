file(REMOVE_RECURSE
  "CMakeFiles/model_compute_test.dir/model_compute_test.cc.o"
  "CMakeFiles/model_compute_test.dir/model_compute_test.cc.o.d"
  "model_compute_test"
  "model_compute_test.pdb"
  "model_compute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
