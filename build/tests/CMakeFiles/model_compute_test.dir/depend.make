# Empty dependencies file for model_compute_test.
# This may be replaced when dependencies are built.
