file(REMOVE_RECURSE
  "CMakeFiles/ps_cluster_test.dir/ps_cluster_test.cc.o"
  "CMakeFiles/ps_cluster_test.dir/ps_cluster_test.cc.o.d"
  "ps_cluster_test"
  "ps_cluster_test.pdb"
  "ps_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
