# Empty compiler generated dependencies file for train_tensor_test.
# This may be replaced when dependencies are built.
