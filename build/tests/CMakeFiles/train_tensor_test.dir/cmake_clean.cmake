file(REMOVE_RECURSE
  "CMakeFiles/train_tensor_test.dir/train_tensor_test.cc.o"
  "CMakeFiles/train_tensor_test.dir/train_tensor_test.cc.o.d"
  "train_tensor_test"
  "train_tensor_test.pdb"
  "train_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
