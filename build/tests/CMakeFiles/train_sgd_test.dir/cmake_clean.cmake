file(REMOVE_RECURSE
  "CMakeFiles/train_sgd_test.dir/train_sgd_test.cc.o"
  "CMakeFiles/train_sgd_test.dir/train_sgd_test.cc.o.d"
  "train_sgd_test"
  "train_sgd_test.pdb"
  "train_sgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_sgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
