# Empty dependencies file for train_sgd_test.
# This may be replaced when dependencies are built.
