file(REMOVE_RECURSE
  "CMakeFiles/core_sync_method_test.dir/core_sync_method_test.cc.o"
  "CMakeFiles/core_sync_method_test.dir/core_sync_method_test.cc.o.d"
  "core_sync_method_test"
  "core_sync_method_test.pdb"
  "core_sync_method_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sync_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
