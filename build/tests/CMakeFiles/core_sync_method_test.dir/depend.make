# Empty dependencies file for core_sync_method_test.
# This may be replaced when dependencies are built.
