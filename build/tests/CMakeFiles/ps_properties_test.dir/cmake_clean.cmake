file(REMOVE_RECURSE
  "CMakeFiles/ps_properties_test.dir/ps_properties_test.cc.o"
  "CMakeFiles/ps_properties_test.dir/ps_properties_test.cc.o.d"
  "ps_properties_test"
  "ps_properties_test.pdb"
  "ps_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
