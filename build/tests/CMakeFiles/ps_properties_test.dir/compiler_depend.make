# Empty compiler generated dependencies file for ps_properties_test.
# This may be replaced when dependencies are built.
