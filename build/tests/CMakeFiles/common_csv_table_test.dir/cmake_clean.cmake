file(REMOVE_RECURSE
  "CMakeFiles/common_csv_table_test.dir/common_csv_table_test.cc.o"
  "CMakeFiles/common_csv_table_test.dir/common_csv_table_test.cc.o.d"
  "common_csv_table_test"
  "common_csv_table_test.pdb"
  "common_csv_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_csv_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
