# Empty dependencies file for common_options_test.
# This may be replaced when dependencies are built.
