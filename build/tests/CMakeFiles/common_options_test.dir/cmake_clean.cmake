file(REMOVE_RECURSE
  "CMakeFiles/common_options_test.dir/common_options_test.cc.o"
  "CMakeFiles/common_options_test.dir/common_options_test.cc.o.d"
  "common_options_test"
  "common_options_test.pdb"
  "common_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
