file(REMOVE_RECURSE
  "CMakeFiles/runner_experiment_test.dir/runner_experiment_test.cc.o"
  "CMakeFiles/runner_experiment_test.dir/runner_experiment_test.cc.o.d"
  "runner_experiment_test"
  "runner_experiment_test.pdb"
  "runner_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
