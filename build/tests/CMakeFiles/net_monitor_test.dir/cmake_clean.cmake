file(REMOVE_RECURSE
  "CMakeFiles/net_monitor_test.dir/net_monitor_test.cc.o"
  "CMakeFiles/net_monitor_test.dir/net_monitor_test.cc.o.d"
  "net_monitor_test"
  "net_monitor_test.pdb"
  "net_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
