file(REMOVE_RECURSE
  "CMakeFiles/train_trainer_test.dir/train_trainer_test.cc.o"
  "CMakeFiles/train_trainer_test.dir/train_trainer_test.cc.o.d"
  "train_trainer_test"
  "train_trainer_test.pdb"
  "train_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
