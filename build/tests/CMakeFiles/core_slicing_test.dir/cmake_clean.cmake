file(REMOVE_RECURSE
  "CMakeFiles/core_slicing_test.dir/core_slicing_test.cc.o"
  "CMakeFiles/core_slicing_test.dir/core_slicing_test.cc.o.d"
  "core_slicing_test"
  "core_slicing_test.pdb"
  "core_slicing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_slicing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
