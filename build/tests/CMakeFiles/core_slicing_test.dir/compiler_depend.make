# Empty compiler generated dependencies file for core_slicing_test.
# This may be replaced when dependencies are built.
